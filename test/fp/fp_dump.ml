(* Regenerates test/fingerprints.expected: one "<protocol>\t<seed>\t<fp>"
   line per (protocol, golden seed) pair, to stdout.  Run through
   `make fingerprints`, which refuses to overwrite the golden file from a
   dirty tree — a regenerated baseline must be a deliberate, reviewable
   commit of its own.

   The dump runs on the default engine and a single-domain pool; the test
   suites prove both knobs are fingerprint-neutral, so the file pins every
   configuration at once. *)

let () =
  Lbcc_util.Pool.set_default_domains 1;
  List.iter print_endline (Lbcc_testfp.Fp.golden_lines ())
