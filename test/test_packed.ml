(* Property tests for the flat engine's packed-buffer codec layer
   (lib/net/packed.ml): codecs are lossless bit-for-bit, the counting-sort
   delivery plan reproduces sorted-adjacency order, and buffer reuse never
   leaks a previous round's payload. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Packed = Lbcc_net.Packed

(* ------------------------------------------------------------------ *)
(* Codec round trips                                                   *)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"int codec round-trips" ~count:1000
    QCheck.(pair int (int_range 0 63))
    (fun (v, slot) ->
      let buf = Packed.buffer Packed.int_codec ~n:64 in
      Packed.set buf slot v;
      Packed.mem buf slot && Packed.get buf slot = v)

let test_int_extremes () =
  let buf = Packed.buffer Packed.int_codec ~n:8 in
  List.iteri
    (fun i v ->
      Packed.set buf i v;
      Alcotest.(check int) (Printf.sprintf "slot %d" i) v (Packed.get buf i))
    [ 0; 1; -1; max_int; min_int; 0x3FFF_FFFF_FFFF_FFFF; -4611686018427387904 ]

let prop_float_roundtrip =
  QCheck.Test.make ~name:"float codec round-trips bitwise" ~count:1000
    QCheck.(pair float (int_range 0 63))
    (fun (v, slot) ->
      let buf = Packed.buffer Packed.float_codec ~n:64 in
      Packed.set buf slot v;
      Int64.bits_of_float (Packed.get buf slot) = Int64.bits_of_float v)

let test_float_extremes () =
  let buf = Packed.buffer Packed.float_codec ~n:8 in
  List.iteri
    (fun i v ->
      Packed.set buf i v;
      Alcotest.(check int64)
        (Printf.sprintf "slot %d" i)
        (Int64.bits_of_float v)
        (Int64.bits_of_float (Packed.get buf i)))
    [ 0.0; -0.0; infinity; neg_infinity; nan; 1e-308; Float.min_float; -1.5 ]

(* ------------------------------------------------------------------ *)
(* Delivery plan vs. sorted adjacency                                  *)

let graph_arb =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%.2f" seed n p)
    QCheck.Gen.(
      triple (int_range 1 1000) (int_range 3 40)
        (oneofl [ 0.05; 0.15; 0.4; 0.9 ]))

let sorted_neighbors g v =
  let a = Array.of_list (List.map fst (Graph.neighbors g v)) in
  Array.sort Int.compare a;
  a

let prop_plan_matches_sorted_adjacency =
  QCheck.Test.make ~name:"plan segments = sorted adjacency" ~count:200
    graph_arb
    (fun (seed, n, p) ->
      let g = Gen.erdos_renyi_connected (Prng.create seed) ~n ~p ~w_max:8 in
      let plan = Packed.plan g in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        let expect = sorted_neighbors g v in
        let got =
          Array.init (Packed.in_degree plan v) (fun i ->
              plan.Packed.srcs.(plan.Packed.off.(v) + i))
        in
        if got <> expect then ok := false
      done;
      !ok)

let prop_plan_segments_ascending =
  QCheck.Test.make ~name:"plan segments ascending (sender order preserved)"
    ~count:200 graph_arb
    (fun (seed, n, p) ->
      let g = Gen.erdos_renyi_connected (Prng.create seed) ~n ~p ~w_max:8 in
      let plan = Packed.plan g in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        for i = plan.Packed.off.(v) to plan.Packed.off.(v + 1) - 2 do
          if plan.Packed.srcs.(i) > plan.Packed.srcs.(i + 1) then ok := false
        done
      done;
      !ok)

let test_plan_degrees () =
  let g = Gen.erdos_renyi_connected (Prng.create 7) ~n:30 ~p:0.2 ~w_max:8 in
  let plan = Packed.plan g in
  let maxd = ref 0 in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int)
      (Printf.sprintf "in-degree %d" v)
      (Graph.degree g v)
      (Packed.in_degree plan v);
    maxd := Stdlib.max !maxd (Graph.degree g v)
  done;
  Alcotest.(check int) "max in-degree" !maxd (Packed.max_in_degree plan)

(* ------------------------------------------------------------------ *)
(* Buffer reuse                                                        *)

let prop_clear_hides_stale =
  QCheck.Test.make ~name:"clear never leaks stale payloads" ~count:500
    QCheck.(triple (list_of_size Gen.(int_range 0 32) (int_range 0 31)) (list_of_size Gen.(int_range 0 32) (int_range 0 31)) int)
    (fun (round1, round2, v) ->
      let buf = Packed.buffer Packed.int_codec ~n:32 in
      (* Round 1 fills some slots with a marker payload... *)
      List.iter (fun s -> Packed.set buf s 0x5A5A5A5A) round1;
      Packed.clear buf;
      (* ...round 2 fills a different set with [v].  Every slot must either
         hold [v] (written this round) or be absent — the marker must be
         unreachable. *)
      List.iter (fun s -> Packed.set buf s v) round2;
      let ok = ref true in
      for s = 0 to 31 do
        if Packed.mem buf s then begin
          if not (List.mem s round2) then ok := false;
          if Packed.get buf s <> v then ok := false
        end
        else if List.mem s round2 then ok := false
      done;
      !ok)

let test_get_absent_raises () =
  let buf = Packed.buffer Packed.int_codec ~n:4 in
  Packed.set buf 1 42;
  Packed.clear buf;
  Alcotest.check_raises "get after clear"
    (Invalid_argument "Packed.get: no message in slot") (fun () ->
      ignore (Packed.get buf 1))

let suites =
  [
    ( "packed",
      [
        QCheck_alcotest.to_alcotest prop_int_roundtrip;
        Alcotest.test_case "int codec extremes" `Quick test_int_extremes;
        QCheck_alcotest.to_alcotest prop_float_roundtrip;
        Alcotest.test_case "float codec extremes" `Quick test_float_extremes;
        QCheck_alcotest.to_alcotest prop_plan_matches_sorted_adjacency;
        QCheck_alcotest.to_alcotest prop_plan_segments_ascending;
        Alcotest.test_case "plan degrees" `Quick test_plan_degrees;
        QCheck_alcotest.to_alcotest prop_clear_hides_stale;
        Alcotest.test_case "get absent raises" `Quick test_get_absent_raises;
      ] );
  ]
