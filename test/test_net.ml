open Lbcc_util
module Model = Lbcc_net.Model
module Rounds = Lbcc_net.Rounds
module Payload = Lbcc_net.Payload
module Engine = Lbcc_net.Engine
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen

(* ------------------------------------------------------------------ *)
(* Model / payload                                                     *)

let test_model_names () =
  Alcotest.(check string) "bcc" "Broadcast Congested Clique"
    (Model.name Model.broadcast_congested_clique);
  Alcotest.(check string) "bc" "Broadcast CONGEST" (Model.name Model.broadcast_congest)

let test_model_bandwidth () =
  Alcotest.(check int) "n=1024" 20 (Model.bandwidth ~n:1024);
  Alcotest.(check bool) "grows" true (Model.bandwidth ~n:4096 > Model.bandwidth ~n:16)

let test_payload_sizes () =
  Alcotest.(check int) "vertex id n=256" 8 (Payload.size [ Vertex_id 256 ]);
  Alcotest.(check bool) "weight integral small" true
    (Payload.size [ Weight 5.0 ] < Payload.size [ Weight 5.5 ]);
  Alcotest.(check int) "fractional weight costs a double" 64
    (Payload.size [ Weight 5.5 ]);
  Alcotest.(check int) "empty still 1 bit" 1 (Payload.size [])

let test_payload_weight_bits () =
  Alcotest.(check int) "w=1" (Payload.weight_bits 1.0) (1 + 1);
  Alcotest.(check int) "w=1024" (Payload.weight_bits 1024.0) (1 + 11)

(* ------------------------------------------------------------------ *)
(* Rounds accountant                                                   *)

let test_rounds_charging () =
  let acc = Rounds.create ~bandwidth:10 in
  Rounds.charge acc ~label:"a" ~rounds:3;
  Rounds.charge_broadcast acc ~label:"b" ~bits:25;
  (* ceil(25/10) = 3 *)
  Alcotest.(check int) "total" 6 (Rounds.rounds acc);
  Alcotest.(check (list (pair string int))) "breakdown" [ ("a", 3); ("b", 3) ]
    (Rounds.breakdown acc)

let test_rounds_small_message_one_round () =
  let acc = Rounds.create ~bandwidth:16 in
  Rounds.charge_broadcast acc ~label:"x" ~bits:1;
  Alcotest.(check int) "at least one round" 1 (Rounds.rounds acc)

let test_rounds_reset_checkpoint () =
  let acc = Rounds.create ~bandwidth:8 in
  Rounds.charge acc ~label:"x" ~rounds:5;
  let cp = Rounds.checkpoint acc in
  Rounds.charge acc ~label:"x" ~rounds:2;
  Alcotest.(check int) "diff" 2 (Rounds.rounds acc - cp);
  Rounds.reset acc;
  Alcotest.(check int) "reset" 0 (Rounds.rounds acc)

let test_rounds_rejects_bad () =
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Rounds.create: bandwidth must be >= 1") (fun () ->
      ignore (Rounds.create ~bandwidth:0))

let sum_snd l = List.fold_left (fun s (_, v) -> s + v) 0 l

let test_rounds_breakdown_sums () =
  let acc = Rounds.create ~bandwidth:10 in
  Rounds.charge ~bits:7 acc ~label:"b" ~rounds:2;
  Rounds.charge_broadcast acc ~label:"a" ~bits:25;
  Rounds.with_phase acc "p" (fun () ->
      Rounds.charge_vector acc ~label:"v" ~entry_bits:12;
      Rounds.charge_broadcast acc ~label:"a" ~bits:4);
  Rounds.charge acc ~label:"b" ~rounds:1;
  Alcotest.(check int) "breakdown sums to rounds" (Rounds.rounds acc)
    (sum_snd (Rounds.breakdown acc));
  Alcotest.(check int) "bits breakdown sums to bits" (Rounds.bits acc)
    (sum_snd (Rounds.bits_breakdown acc));
  Alcotest.(check (list string)) "first-charge label order"
    [ "b"; "a"; "p/v"; "p/a" ]
    (List.map fst (Rounds.breakdown acc));
  Alcotest.(check (list string)) "bits breakdown shares the order"
    (List.map fst (Rounds.breakdown acc))
    (List.map fst (Rounds.bits_breakdown acc))

let test_rounds_reset_clears_hierarchy () =
  let acc = Rounds.create ~bandwidth:8 in
  Rounds.with_phase acc "outer" (fun () ->
      Rounds.charge acc ~label:"x" ~rounds:1;
      Rounds.reset acc;
      Alcotest.(check int) "totals cleared" 0 (Rounds.rounds acc);
      Alcotest.(check int) "bits cleared" 0 (Rounds.bits acc);
      Alcotest.(check (list (pair string int))) "breakdown cleared" []
        (Rounds.breakdown acc);
      Alcotest.(check string) "open phase forgotten" "" (Rounds.phase_path acc);
      Rounds.charge acc ~label:"y" ~rounds:1);
  Alcotest.(check (list (pair string int))) "post-reset charge unprefixed"
    [ ("y", 1) ]
    (Rounds.breakdown acc)

(* Regression: charge_vector once under-counted multi-coordinate exchanges by
   charging entry_bits regardless of how many coordinates each vertex holds;
   ~entries must multiply both the bits and the round cost. *)
let test_rounds_charge_vector_entries () =
  let acc = Rounds.create ~bandwidth:10 in
  Rounds.charge_vector acc ~label:"v" ~entry_bits:4;
  Alcotest.(check int) "one entry, one round" 1 (Rounds.rounds acc);
  Alcotest.(check int) "one entry bits" 4 (Rounds.bits acc);
  Rounds.reset acc;
  Rounds.charge_vector ~entries:8 acc ~label:"v" ~entry_bits:4;
  Alcotest.(check int) "entries multiply bits" 32 (Rounds.bits acc);
  Alcotest.(check int) "rounds = ceil(32/10)" 4 (Rounds.rounds acc);
  Alcotest.check_raises "entries >= 1"
    (Invalid_argument "Rounds.charge_vector: entries must be >= 1") (fun () ->
      Rounds.charge_vector ~entries:0 acc ~label:"v" ~entry_bits:1)

let test_rounds_tree () =
  let acc = Rounds.create ~bandwidth:10 in
  Rounds.with_phase acc "solve" (fun () ->
      Rounds.charge acc ~label:"setup" ~rounds:2;
      Rounds.with_phase acc "inner" (fun () ->
          Rounds.charge_broadcast acc ~label:"x" ~bits:25));
  match Rounds.tree acc with
  | [ { Rounds.label = "solve"; t_rounds = 5; t_bits = 25;
        children =
          [ { Rounds.label = "setup"; t_rounds = 2; _ };
            { Rounds.label = "inner"; t_rounds = 3; children = [ _ ]; _ } ] } ] ->
      ()
  | forest ->
      Alcotest.fail
        (Format.asprintf "unexpected tree shape (%d roots)" (List.length forest))

(* ------------------------------------------------------------------ *)
(* Engine: a BFS vertex program                                        *)

type bfs_state = { dist : int option }

let bfs_program graph model =
  let n = Graph.n graph in
  let init v = { dist = (if v = 0 then Some 0 else None) } in
  let step ~round ~vertex:_ state inbox =
    match state.dist with
    | Some d ->
        (* The root announces in the first superstep and halts. *)
        if round = 1 then (state, Some d, false) else (state, None, false)
    | None -> (
        match inbox with
        | (_, d) :: _ ->
            (* Learn, announce immediately, halt. *)
            let d' = d + 1 in
            ({ dist = Some d' }, Some d', false)
        | [] -> (state, None, true))
  in
  Engine.run ~model ~graph ~size_bits:(fun d -> Bits.int_bits d) ~init ~step
    ~max_supersteps:(2 * n) ()

let test_engine_bfs_distances () =
  let prng = Prng.create 21 in
  let g = Gen.ring prng ~n:8 in
  let states, _ = bfs_program g Model.broadcast_congest in
  let hops = Lbcc_graph.Paths.bfs_hops g ~src:0 in
  Array.iteri
    (fun v st ->
      match st.dist with
      | Some d -> Alcotest.(check int) (Printf.sprintf "dist %d" v) hops.(v) d
      | None -> Alcotest.fail "vertex never reached")
    states

let test_engine_bfs_rounds_ring_vs_clique () =
  let prng = Prng.create 22 in
  let g = Gen.ring prng ~n:16 in
  let _, bc = bfs_program g Model.broadcast_congest in
  let _, bcc = bfs_program g Model.broadcast_congested_clique in
  (* In the clique the wave reaches everyone in O(1) hops regardless of the
     ring structure. *)
  Alcotest.(check bool) "clique much faster" true (bcc.Engine.supersteps < bc.Engine.supersteps)

let test_engine_rejects_unicast () =
  let prng = Prng.create 23 in
  let g = Gen.ring prng ~n:4 in
  Alcotest.check_raises "unicast rejected"
    (Invalid_argument "Engine.run: only broadcast disciplines are simulated")
    (fun () ->
      ignore
        (Engine.run ~model:Model.congest ~graph:g ~size_bits:(fun _ -> 1)
           ~init:(fun _ -> ())
           ~step:(fun ~round:_ ~vertex:_ s _ -> (s, None, false))
           ()))

let test_engine_charges_accountant () =
  let prng = Prng.create 24 in
  let g = Gen.ring prng ~n:8 in
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n:8) in
  let _ =
    Engine.run ~accountant:acc ~label:"flood" ~model:Model.broadcast_congest
      ~graph:g
      ~size_bits:(fun () -> 4)
      ~init:(fun _ -> 0)
      ~step:(fun ~round ~vertex:_ k _ ->
        if round <= 3 then (k + 1, Some (), true) else (k, None, false))
      ()
  in
  Alcotest.(check bool) "charged" true (Rounds.rounds acc >= 3);
  Alcotest.(check bool) "labeled" true
    (List.mem_assoc "flood" (Rounds.breakdown acc))

let test_engine_big_messages_cost_more () =
  let prng = Prng.create 25 in
  let g = Gen.ring prng ~n:8 in
  let run bits =
    let _, stats =
      Engine.run ~model:Model.broadcast_congest ~graph:g
        ~size_bits:(fun () -> bits)
        ~init:(fun _ -> 0)
        ~step:(fun ~round ~vertex:_ k _ ->
          if round = 1 then (k, Some (), true) else (k, None, false))
        ()
    in
    stats.Engine.rounds
  in
  Alcotest.(check bool) "100-bit message costs more rounds" true (run 100 > run 3)

(* Unicast: a token-passing ring program — each vertex forwards a counter
   to its clockwise neighbor; after n hops the token returns home. *)
let test_engine_unicast_ring_token () =
  let prng = Prng.create 26 in
  let n = 8 in
  let g = Gen.ring prng ~n in
  let next v = (v + 1) mod n in
  let init v = if v = 0 then Some 0 else None in
  let step ~round:_ ~vertex st (inbox : int Engine.inbox) =
    match (st, inbox) with
    | Some 0, [] when vertex = 0 -> (Some 0, [ (next 0, 1) ], true)
    | _, (_, hops) :: _ ->
        if vertex = 0 then (Some hops, [], false)
        else (Some hops, [ (next vertex, hops + 1) ], false)
    | st, [] -> (st, [], true)
  in
  let states, stats =
    Engine.run_unicast ~model:Model.congest ~graph:g
      ~size_bits:(fun h -> Bits.int_bits h)
      ~init ~step ~max_supersteps:(4 * n) ()
  in
  Alcotest.(check (option int)) "token returned with n hops" (Some n) states.(0);
  Alcotest.(check bool) "took ~n supersteps" true (stats.Engine.supersteps >= n)

let test_engine_unicast_rejects_nonneighbor () =
  let prng = Prng.create 27 in
  let g = Gen.ring prng ~n:6 in
  Alcotest.check_raises "non-neighbor"
    (Invalid_argument "Engine.run_unicast: message to a non-neighbor") (fun () ->
      ignore
        (Engine.run_unicast ~model:Model.congest ~graph:g
           ~size_bits:(fun () -> 1)
           ~init:(fun _ -> ())
           ~step:(fun ~round:_ ~vertex:_ s _ -> (s, [ (3, ()) ], false))
           ()))

let test_engine_converged_flag () =
  let prng = Prng.create 29 in
  let g = Gen.ring prng ~n:8 in
  let _, stats = bfs_program g Model.broadcast_congest in
  Alcotest.(check bool) "clean run converges" true stats.Engine.converged;
  let _, stats =
    Engine.run ~model:Model.broadcast_congest ~graph:g
      ~size_bits:(fun () -> 1)
      ~init:(fun _ -> ())
      ~step:(fun ~round:_ ~vertex:_ s _ -> (s, Some (), true))
      ~max_supersteps:3 ()
  in
  Alcotest.(check bool) "truncated run reported" false stats.Engine.converged

let test_engine_unicast_crash_is_honest () =
  (* Crash the token holder mid-ring: the token vanishes and the other
     vertices wait until the cap — the unicast engine must say so. *)
  let prng = Prng.create 30 in
  let n = 6 in
  let g = Gen.ring prng ~n in
  let next v = (v + 1) mod n in
  let init v = if v = 0 then Some 0 else None in
  let step ~round:_ ~vertex st (inbox : int Engine.inbox) =
    match (st, inbox) with
    | Some 0, [] when vertex = 0 -> (Some 0, [ (next 0, 1) ], true)
    | _, (_, hops) :: _ ->
        if vertex = 0 then (Some hops, [], false)
        else (Some hops, [ (next vertex, hops + 1) ], false)
    | st, [] -> (st, [], true)
  in
  let faults =
    Lbcc_net.Fault.create ~seed:1 (Lbcc_net.Fault.spec ~crashes:[ (3, 3) ] ())
  in
  let states, stats =
    Engine.run_unicast ~faults ~model:Model.congest ~graph:g
      ~size_bits:(fun h -> Bits.int_bits h)
      ~init ~step ~max_supersteps:(4 * n) ()
  in
  Alcotest.(check bool) "truncated" false stats.Engine.converged;
  Alcotest.(check (option int)) "token never returned" (Some 0) states.(0)

let test_engine_unicast_clique_allows_all () =
  let prng = Prng.create 28 in
  let g = Gen.ring prng ~n:6 in
  (* In the (unicast) Congested Clique, vertex 0 may message vertex 3
     directly even though the ring has no such edge. *)
  let states, _ =
    Engine.run_unicast ~model:Model.congested_clique ~graph:g
      ~size_bits:(fun () -> 1)
      ~init:(fun v -> v = 3 && false)
      ~step:(fun ~round ~vertex st inbox ->
        if round = 1 && vertex = 0 then (st, [ (3, ()) ], false)
        else if inbox <> [] then (true, [], false)
        else (st, [], round < 3))
      ()
  in
  Alcotest.(check bool) "vertex 3 received" true states.(3)

let suites =
  [
    ( "net.model",
      [
        Alcotest.test_case "names" `Quick test_model_names;
        Alcotest.test_case "bandwidth" `Quick test_model_bandwidth;
        Alcotest.test_case "payload sizes" `Quick test_payload_sizes;
        Alcotest.test_case "weight bits" `Quick test_payload_weight_bits;
      ] );
    ( "net.rounds",
      [
        Alcotest.test_case "charging" `Quick test_rounds_charging;
        Alcotest.test_case "one round minimum" `Quick test_rounds_small_message_one_round;
        Alcotest.test_case "reset/checkpoint" `Quick test_rounds_reset_checkpoint;
        Alcotest.test_case "rejects bad bandwidth" `Quick test_rounds_rejects_bad;
        Alcotest.test_case "breakdown sums + order" `Quick test_rounds_breakdown_sums;
        Alcotest.test_case "reset clears hierarchy" `Quick
          test_rounds_reset_clears_hierarchy;
        Alcotest.test_case "charge_vector entries" `Quick
          test_rounds_charge_vector_entries;
        Alcotest.test_case "phase tree" `Quick test_rounds_tree;
      ] );
    ( "net.engine",
      [
        Alcotest.test_case "bfs distances" `Quick test_engine_bfs_distances;
        Alcotest.test_case "ring vs clique" `Quick test_engine_bfs_rounds_ring_vs_clique;
        Alcotest.test_case "rejects unicast" `Quick test_engine_rejects_unicast;
        Alcotest.test_case "charges accountant" `Quick test_engine_charges_accountant;
        Alcotest.test_case "message size matters" `Quick test_engine_big_messages_cost_more;
        Alcotest.test_case "converged flag" `Quick test_engine_converged_flag;
        Alcotest.test_case "unicast crash is honest" `Quick
          test_engine_unicast_crash_is_honest;
        Alcotest.test_case "unicast ring token" `Quick test_engine_unicast_ring_token;
        Alcotest.test_case "unicast rejects non-neighbor" `Quick
          test_engine_unicast_rejects_nonneighbor;
        Alcotest.test_case "unicast clique topology" `Quick
          test_engine_unicast_clique_allows_all;
      ] );
  ]
