(* Differential harness: boxed vs. flat engine core (DESIGN.md §10).

   The flat struct-of-arrays core replaced the boxed engine as the default;
   the boxed implementation is kept verbatim as the baseline.  This suite
   pins the equivalence the swap rests on: for every protocol in the shared
   fingerprint table — BFS / SSSP / leader on clique and input-graph
   topologies, their crash-safe (Reliable) and Byzantine-safe wrappers, and
   the sparsifier — a boxed run at one domain and flat runs at 1, 2 and 4
   domains produce bit-identical fingerprints (final states with floats by
   bit pattern, rounds, supersteps, total bits, fault outcomes, accountant
   breakdowns) across 10 seeds and the {None, Crash_safe, Byzantine_safe}
   reliability tiers the table spans.

   The struct-of-arrays entry point run_soa has no boxed twin, so it is
   diffed against the boxed *generic* engine running the same int-payload
   program, across the same fault tiers. *)

open Lbcc_util
module Fp = Lbcc_testfp.Fp
module Graph = Lbcc_graph.Graph
module Model = Lbcc_net.Model
module Fault = Lbcc_net.Fault
module Engine = Lbcc_net.Engine
module Rounds = Lbcc_net.Rounds

let with_impl impl f =
  let saved = Engine.default_impl () in
  Engine.set_default_impl impl;
  Fun.protect ~finally:(fun () -> Engine.set_default_impl saved) f

let test_protocol (name, f) () =
  with_impl Engine.Boxed @@ fun () ->
  Pool.set_default_domains 1;
  let baselines = List.map (fun s -> (s, f s)) Fp.seeds in
  with_impl Engine.Flat @@ fun () ->
  List.iter
    (fun d ->
      Pool.set_default_domains d;
      List.iter
        (fun (s, expected) ->
          let got = f s in
          Alcotest.(check string)
            (Printf.sprintf "%s seed=%d boxed=flat@%dd" name s d)
            expected got)
        baselines)
    [ 1; 2; 4 ];
  Pool.set_default_domains 1

(* ------------------------------------------------------------------ *)
(* run_soa vs. the boxed generic engine on a BFS program               *)

(* The same BFS both ways: the exact step semantics of Lbcc_dist.Bfs
   (adopt the FIRST — lowest-id — announcer, announce the new distance in
   the same superstep, halt one superstep after announcing; an unreached
   vertex stays live until the cap), written once against the boxed
   ('state, int) interface and once as a run_soa step over flat Vstate
   columns.  The tamper transform matches Lbcc_dist.Bfs too, so the fault
   tiers corrupt payloads identically. *)
let tamper ~salt d = d lxor (1 lor (salt land 0x7))

let cap n = 2 * (n + 1)

let fingerprint_of ~dist ~parent (stats : Engine.stats) acc =
  Printf.sprintf "%s|%s|%d|%d|%d|%d|%b|%s" (Fp.ints dist) (Fp.ints parent)
    stats.Engine.rounds stats.Engine.supersteps stats.Engine.messages_sent
    stats.Engine.total_bits stats.Engine.converged (Fp.acct_fp acc)

let soa_fingerprint ~model ~graph ~faults ~source =
  let n = Graph.n graph in
  let vs = Lbcc_net.Vstate.create ~n in
  let dist = Lbcc_net.Vstate.ints ~init:max_int vs "dist" in
  let parent = Lbcc_net.Vstate.ints ~init:(-1) vs "parent" in
  let announced = Lbcc_net.Vstate.bytes vs "announced" in
  dist.(source) <- 0;
  let step ~round:_ ~vertex (ib : Engine.soa_inbox) (out : Engine.soa_out) =
    if dist.(vertex) < max_int then
      if Bytes.get announced vertex <> '\000' then false
      else begin
        Bytes.set announced vertex '\001';
        out.Engine.send <- true;
        out.Engine.value <- dist.(vertex);
        true
      end
    else if ib.Engine.count > 0 then begin
      let d = ib.Engine.payloads.(0) + 1 in
      dist.(vertex) <- d;
      parent.(vertex) <- ib.Engine.senders.(0);
      Bytes.set announced vertex '\001';
      out.Engine.send <- true;
      out.Engine.value <- d;
      true
    end
    else true
  in
  let acc = Rounds.create ~bandwidth:16 in
  let stats =
    Engine.run_soa ~accountant:acc ?faults ~tamper ~label:"soa-bfs" ~model
      ~graph
      ~size_bits:(fun d -> Bits.int_bits d)
      ~step ~max_supersteps:(cap n) ()
  in
  fingerprint_of ~dist ~parent stats acc

let boxed_fingerprint ~model ~graph ~faults ~source =
  let n = Graph.n graph in
  let init v = if v = source then (0, -1, false) else (max_int, -1, false) in
  let step ~round:_ ~vertex:_ (d, p, announced) inbox =
    if d < max_int then
      if announced then ((d, p, announced), None, false)
      else ((d, p, true), Some d, true)
    else
      match inbox with
      | (sender, dm) :: _ -> ((dm + 1, sender, true), Some (dm + 1), true)
      | [] -> ((d, p, announced), None, true)
  in
  let acc = Rounds.create ~bandwidth:16 in
  let states, stats =
    Engine.run ~impl:Engine.Boxed ~accountant:acc ?faults ~tamper
      ~label:"soa-bfs" ~model ~graph
      ~size_bits:(fun d -> Bits.int_bits d)
      ~init ~step ~max_supersteps:(cap n) ()
  in
  let dist = Array.map (fun (d, _, _) -> d) states in
  let parent = Array.map (fun (_, p, _) -> p) states in
  fingerprint_of ~dist ~parent stats acc

let fault_tiers =
  [
    ("lossless", fun _ -> None);
    ("faulty", fun seed -> Some (Fp.faults_of seed));
    ( "crashy",
      fun seed ->
        Some
          (Fault.create ~seed
             (Fault.spec ~drop_prob:0.1 ~duplicate_prob:0.2
                ~crashes:[ (2, 3); (7, 5) ] ~adversarial_drops:3 ())) );
  ]

let test_soa (tier, faults_of) () =
  Pool.set_default_domains 1;
  List.iter
    (fun (mname, model) ->
      List.iter
        (fun seed ->
          let graph = Fp.graph_of seed in
          let expected =
            boxed_fingerprint ~model ~graph ~faults:(faults_of seed) ~source:0
          in
          List.iter
            (fun d ->
              Pool.set_default_domains d;
              let got =
                soa_fingerprint ~model ~graph ~faults:(faults_of seed)
                  ~source:0
              in
              Alcotest.(check string)
                (Printf.sprintf "soa-bfs %s %s seed=%d domains=%d" mname tier
                   seed d)
                expected got)
            [ 1; 2; 4 ];
          Pool.set_default_domains 1)
        Fp.seeds)
    [
      ("clique", Model.broadcast_congested_clique);
      ("input-graph", Model.broadcast_congest);
    ]

let suites =
  [
    ( "engine-diff",
      List.map
        (fun (name, f) ->
          Alcotest.test_case (name ^ " boxed=flat") `Quick
            (test_protocol (name, f)))
        Fp.protocols
      @ List.map
          (fun (tier, faults_of) ->
            Alcotest.test_case
              (Printf.sprintf "soa bfs %s boxed=soa" tier)
              `Quick
              (test_soa (tier, faults_of)))
          fault_tiers );
  ]
