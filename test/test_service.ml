(* Prepared-operator service layer: fingerprints, the LRU handle cache,
   prepare-once/query-many round accounting, and the batched multi-RHS
   path's bit-identity with sequential solves at 1/2/4 domains. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Vec = Lbcc_linalg.Vec
module Rounds = Lbcc_net.Rounds
module Solver = Lbcc_laplacian.Solver
module Ctx = Lbcc_service.Ctx
module Fingerprint = Lbcc_service.Fingerprint
module Cache = Lbcc_service.Cache
module Prepared = Lbcc_service.Prepared
module Lbcc = Lbcc_core.Lbcc

let test_graph ?(seed = 11) ?(n = 24) () =
  Gen.erdos_renyi_connected (Prng.create seed) ~n ~p:0.3 ~w_max:5

let rhs_batch ~seed ~nv k =
  let prng = Prng.create seed in
  List.init k (fun _ ->
      Vec.mean_center (Vec.init nv (fun _ -> Prng.gaussian prng)))

let vec_bits v = Array.map Int64.bits_of_float v

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)

let test_fingerprint_structural () =
  let g1 = test_graph () in
  let g2 = test_graph () in
  Alcotest.(check bool) "identical rebuild, same fingerprint" true
    (Fingerprint.graph g1 = Fingerprint.graph g2);
  let edges = Graph.edges g1 in
  let mutated =
    Array.mapi
      (fun i (e : Graph.edge) ->
        if i = 0 then { e with Graph.w = e.Graph.w +. 1.0 } else e)
      edges
  in
  let g3 = Graph.create ~n:(Graph.n g1) (Array.to_list mutated) in
  Alcotest.(check bool) "reweighting one edge changes it" true
    (Fingerprint.graph g1 <> Fingerprint.graph g3);
  Alcotest.(check int) "hex digest is 16 chars" 16
    (String.length (Fingerprint.to_hex (Fingerprint.graph g1)))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  (* "b" is now least recently used; inserting "c" evicts it. *)
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  let v, hit = Cache.find_or_add c "d" (fun () -> 4) in
  Alcotest.(check bool) "miss builds" true ((v, hit) = (4, false));
  let v, hit = Cache.find_or_add c "d" (fun () -> 99) in
  Alcotest.(check bool) "hit returns cached" true ((v, hit) = (4, true));
  let st = Cache.stats c in
  Alcotest.(check int) "size tracks" 2 st.Cache.size;
  Alcotest.(check int) "evictions counted" 2 st.Cache.evictions;
  Alcotest.(check bool) "hits and misses counted" true
    (st.Cache.hits > 0 && st.Cache.misses > 0)

let test_cache_zero_capacity () =
  let c = Cache.create ~capacity:0 () in
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "nothing retained" None (Cache.find c "a");
  let _, hit = Cache.find_or_add c "a" (fun () -> 2) in
  Alcotest.(check bool) "always a miss" false hit

let test_create_cached_fingerprint_keyed () =
  let cache = Cache.create ~capacity:4 () in
  let g = test_graph () in
  let p1, hit1 = Prepared.create_cached ~cache ~seed:3 g in
  Alcotest.(check bool) "first create misses" false hit1;
  (* A structurally identical rebuild hits even though it is a different
     heap value. *)
  let p2, hit2 = Prepared.create_cached ~cache ~seed:3 (test_graph ()) in
  Alcotest.(check bool) "identical graph hits" true hit2;
  Alcotest.(check bool) "same handle returned" true (p1 == p2);
  (* Different seed, different preprocessing: miss. *)
  let _, hit3 = Prepared.create_cached ~cache ~seed:4 g in
  Alcotest.(check bool) "seed is part of the key" false hit3;
  (* Mutating the graph invalidates. *)
  let edges = Array.to_list (Graph.edges g) in
  let mutated =
    match edges with
    | (e : Graph.edge) :: rest -> { e with Graph.w = e.Graph.w +. 1.0 } :: rest
    | [] -> assert false
  in
  let _, hit4 =
    Prepared.create_cached ~cache ~seed:3 (Graph.create ~n:(Graph.n g) mutated)
  in
  Alcotest.(check bool) "mutation invalidates" false hit4

(* ------------------------------------------------------------------ *)
(* Prepare-once / query-many accounting                                *)

let test_prepare_once_query_rounds () =
  let g = test_graph () in
  let p = Prepared.create ~seed:7 g in
  let prep = Prepared.preprocessing_rounds p in
  Alcotest.(check bool) "preprocessing charged" true (prep > 0);
  Alcotest.(check int) "no queries yet" 0 (Prepared.queries p);
  Alcotest.(check int) "handle total = preprocessing" prep (Prepared.rounds p);
  (* Standalone Thm 1.3 query phase on an independently prepared solver:
     the per-query rounds of the handle must match it exactly. *)
  let standalone =
    let solver = Solver.preprocess ~prng:(Prng.create 7) ~graph:g () in
    let b = List.hd (rhs_batch ~seed:42 ~nv:(Graph.n g) 1) in
    (Solver.solve solver ~b ~eps:1e-8).Solver.rounds
  in
  let k = 5 in
  let qs =
    List.map
      (fun b -> Prepared.solve p ~b)
      (rhs_batch ~seed:42 ~nv:(Graph.n g) k)
  in
  List.iter
    (fun (q : Prepared.query_result) ->
      Alcotest.(check int) "query rounds match standalone query phase"
        standalone q.Prepared.rounds)
    qs;
  Alcotest.(check int) "k queries recorded" k (Prepared.queries p);
  Alcotest.(check int) "preprocessing not recharged" prep
    (Prepared.rounds p - Prepared.query_rounds p);
  Alcotest.(check int) "query rounds accumulate" (k * standalone)
    (Prepared.query_rounds p);
  (* The breakdown shows exactly one prepare/* group and the query label. *)
  let labels = List.map (fun (l, _, _) -> l) (Prepared.breakdown p) in
  let prepares =
    List.filter (fun l -> String.length l >= 8 && String.sub l 0 8 = "prepare/")
      labels
  in
  Alcotest.(check bool) "prepare labels present" true (prepares <> []);
  Alcotest.(check bool) "query label present" true
    (List.mem "query/laplacian-matvec" labels);
  (* Amortization: rounds/query decreases as more queries are served. *)
  let amortized_k = Prepared.amortized_rounds_per_query p in
  let _ = Prepared.solve p ~b:(List.hd (rhs_batch ~seed:43 ~nv:(Graph.n g) 1)) in
  Alcotest.(check bool) "amortized cost strictly decreasing" true
    (Prepared.amortized_rounds_per_query p < amortized_k)

let test_mirror_accountant_matches () =
  let g = test_graph () in
  let p = Prepared.create ~seed:7 g in
  let caller = Rounds.create ~bandwidth:8 in
  let b = List.hd (rhs_batch ~seed:42 ~nv:(Graph.n g) 1) in
  let q = Prepared.solve ~accountant:caller p ~b in
  Alcotest.(check int) "caller sees exactly the query rounds"
    q.Prepared.rounds (Rounds.rounds caller);
  Alcotest.(check (list (pair string int))) "same label path as the handle"
    [ ("query/laplacian-matvec", q.Prepared.rounds) ]
    (Rounds.breakdown caller)

(* ------------------------------------------------------------------ *)
(* solve_many: bitwise identity with sequential solves, per domains    *)

let solve_many_vs_sequential domains () =
  Pool.set_default_domains domains;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_domains 1)
    (fun () ->
      let g = test_graph ~seed:13 ~n:30 () in
      let k = 8 in
      let bs = rhs_batch ~seed:99 ~nv:(Graph.n g) k in
      let batch_h = Prepared.create ~seed:5 g in
      let seq_h = Prepared.create ~seed:5 g in
      let batched = Prepared.solve_many batch_h bs in
      let sequential = List.map (fun b -> Prepared.solve seq_h ~b) bs in
      List.iteri
        (fun i ((bq : Prepared.query_result), (sq : Prepared.query_result)) ->
          Alcotest.(check bool)
            (Printf.sprintf "solution %d bit-identical" i)
            true
            (vec_bits bq.Prepared.solution = vec_bits sq.Prepared.solution);
          Alcotest.(check int)
            (Printf.sprintf "rounds %d equal" i)
            sq.Prepared.rounds bq.Prepared.rounds)
        (List.combine batched sequential);
      Alcotest.(check bool) "accountant state identical" true
        (Prepared.breakdown batch_h = Prepared.breakdown seq_h);
      Alcotest.(check int) "queries equal" (Prepared.queries seq_h)
        (Prepared.queries batch_h))

(* ------------------------------------------------------------------ *)
(* Front door integration                                              *)

let test_front_door_cache_effect () =
  (* A graph no other test uses, so the first call is a shared-cache miss. *)
  let g = test_graph ~seed:20230 ~n:26 () in
  let b = List.hd (rhs_batch ~seed:7 ~nv:(Graph.n g) 1) in
  let r1 = Lbcc.solve_laplacian ~ctx:(Lbcc.Ctx.make ~seed:31 ()) g ~b in
  let r2 = Lbcc.solve_laplacian ~ctx:(Lbcc.Ctx.make ~seed:31 ()) g ~b in
  Alcotest.(check bool) "same solution bits" true
    (vec_bits r1.Lbcc.solution = vec_bits r2.Lbcc.solution);
  Alcotest.(check int) "preprocessing_rounds stable"
    r1.Lbcc.preprocessing_rounds r2.Lbcc.preprocessing_rounds;
  Alcotest.(check int) "first call pays prepare + query"
    (r1.Lbcc.preprocessing_rounds + r1.Lbcc.solve_rounds)
    r1.Lbcc.rounds.Lbcc.total;
  Alcotest.(check int) "cached call pays only the query" r2.Lbcc.solve_rounds
    r2.Lbcc.rounds.Lbcc.total;
  List.iter
    (fun (r : Lbcc.laplacian_result) ->
      Alcotest.(check int) "breakdown sums to total" r.Lbcc.rounds.Lbcc.total
        (List.fold_left (fun a (_, x) -> a + x) 0 r.Lbcc.rounds.Lbcc.breakdown))
    [ r1; r2 ]

let test_effective_resistance_reports_rounds () =
  let g = test_graph ~seed:20231 ~n:22 () in
  let r = Lbcc.effective_resistance ~ctx:(Lbcc.Ctx.make ~seed:17 ()) g ~s:1 ~t:9 in
  Alcotest.(check bool) "resistance positive" true (r.Lbcc.resistance > 0.0);
  Alcotest.(check bool) "query rounds reported" true (r.Lbcc.query_rounds > 0);
  Alcotest.(check bool) "preprocessing reported" true
    (r.Lbcc.preprocessing_rounds > 0);
  Alcotest.(check bool) "report non-empty" true
    (r.Lbcc.rounds.Lbcc.total > 0)

let test_mcmf_single_prepare_phase () =
  let net =
    Lbcc_flow.Network.random (Prng.create 7) ~n:6 ~density:0.4 ~max_capacity:3
      ~max_cost:2
  in
  let r = Lbcc.min_cost_max_flow ~ctx:(Lbcc.Ctx.make ~seed:3 ()) net in
  let prepare_labels, query_labels =
    List.partition
      (fun (l, _) ->
        List.exists
          (fun part -> part = "prepare")
          (String.split_on_char '/' l))
      (List.filter
         (fun (l, _) -> String.length l >= 5 && String.sub l 0 5 = "mcmf/")
         r.Lbcc.rounds.Lbcc.breakdown)
  in
  (* One prepare/* phase for the whole run... *)
  Alcotest.(check (list (pair string bool))) "single prepare label"
    [ ("mcmf/prepare/flow-instance", true) ]
    (List.map (fun (l, r) -> (l, r > 0)) prepare_labels);
  (* ...and the per-iteration solves under query/*. *)
  Alcotest.(check bool) "normal solves labeled query/*" true
    (List.mem_assoc "mcmf/ipm/query/normal-solve" query_labels)

let suites =
  [
    ( "service.fingerprint",
      [ Alcotest.test_case "structural" `Quick test_fingerprint_structural ] );
    ( "service.cache",
      [
        Alcotest.test_case "lru eviction + stats" `Quick test_cache_lru;
        Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
        Alcotest.test_case "fingerprint keyed" `Quick
          test_create_cached_fingerprint_keyed;
      ] );
    ( "service.prepared",
      [
        Alcotest.test_case "prepare once, query many" `Quick
          test_prepare_once_query_rounds;
        Alcotest.test_case "caller accountant mirror" `Quick
          test_mirror_accountant_matches;
        Alcotest.test_case "solve_many = sequential (1 domain)" `Quick
          (solve_many_vs_sequential 1);
        Alcotest.test_case "solve_many = sequential (2 domains)" `Quick
          (solve_many_vs_sequential 2);
        Alcotest.test_case "solve_many = sequential (4 domains)" `Quick
          (solve_many_vs_sequential 4);
      ] );
    ( "service.front_door",
      [
        Alcotest.test_case "solve_laplacian cache effect" `Quick
          test_front_door_cache_effect;
        Alcotest.test_case "effective_resistance rounds" `Quick
          test_effective_resistance_reports_rounds;
        Alcotest.test_case "mcmf single prepare phase" `Quick
          test_mcmf_single_prepare_phase;
      ] );
  ]
