open Lbcc_util
module Model = Lbcc_net.Model
module Rounds = Lbcc_net.Rounds
module Fault = Lbcc_net.Fault
module Byzantine = Lbcc_net.Byzantine
module Gen = Lbcc_graph.Gen
module Bfs = Lbcc_dist.Bfs
module Sssp = Lbcc_dist.Sssp
module Leader = Lbcc_dist.Leader

let clique = Model.broadcast_congested_clique

(* A worst-tolerable adversary on [n] vertices: the first [f_max] vertices
   equivocate on [byz_prob] of their deliveries and forge their echoes. *)
let byz_faults ?(extra = 0) ?(byz_prob = 0.15) ~seed ~n () =
  let f = Fault.max_tolerated ~n + extra in
  Fault.create ~seed (Fault.spec ~byzantine:(List.init f Fun.id) ~byz_prob ())

(* ------------------------------------------------------------------ *)
(* Reliability tiers: conformance at f <= n/3                          *)

let test_byz_lossless_matches_raw () =
  let g = Gen.erdos_renyi_connected (Prng.create 3) ~n:8 ~p:0.4 ~w_max:4 in
  let base = Bfs.run ~model:clique ~graph:g ~source:0 () in
  let r, diag = Bfs.run_byzantine ~model:clique ~graph:g ~source:0 () in
  Alcotest.(check bool) "converged" true r.Bfs.converged;
  Alcotest.(check (array int)) "dist" base.Bfs.dist r.Bfs.dist;
  Alcotest.(check (array int)) "parent" base.Bfs.parent r.Bfs.parent;
  Alcotest.(check int) "same virtual supersteps" base.Bfs.supersteps
    r.Bfs.supersteps;
  Alcotest.(check bool) "diag ok" true (Byzantine.Diag.ok diag);
  Alcotest.(check int) "nobody suspected" 0 (List.length diag.suspected)

let test_byz_bfs_survives_equivocation () =
  let g = Gen.erdos_renyi_connected (Prng.create 5) ~n:10 ~p:0.4 ~w_max:4 in
  let base = Bfs.run ~model:clique ~graph:g ~source:4 () in
  List.iter
    (fun seed ->
      let faults = byz_faults ~seed ~n:10 () in
      let r, diag = Bfs.run_byzantine ~faults ~model:clique ~graph:g ~source:4 () in
      Alcotest.(check (array int)) "dist matches lossless" base.Bfs.dist r.Bfs.dist;
      Alcotest.(check bool) "diag ok" true (Byzantine.Diag.ok diag))
    [ 1; 2; 3 ]

let test_byz_sssp_survives_equivocation () =
  let g = Gen.erdos_renyi_connected (Prng.create 7) ~n:10 ~p:0.4 ~w_max:8 in
  let base = Sssp.run ~model:clique ~graph:g ~source:0 () in
  List.iter
    (fun seed ->
      let faults = byz_faults ~seed ~n:10 () in
      let r, diag = Sssp.run_byzantine ~faults ~model:clique ~graph:g ~source:0 () in
      Alcotest.(check bool) "dist matches lossless" true
        (Array.for_all2 Float.equal base.Sssp.dist r.Sssp.dist);
      Alcotest.(check bool) "diag ok" true (Byzantine.Diag.ok diag))
    [ 1; 2; 3 ]

let test_byz_leader_survives_equivocation () =
  let g = Gen.ring (Prng.create 11) ~n:13 in
  let base = Leader.run ~model:clique ~graph:g () in
  List.iter
    (fun seed ->
      let faults = byz_faults ~seed ~n:13 () in
      let r, diag = Leader.run_byzantine ~faults ~model:clique ~graph:g () in
      Alcotest.(check int) "leader matches lossless" base.Leader.leader
        r.Leader.leader;
      Alcotest.(check bool) "diag ok" true (Byzantine.Diag.ok diag))
    [ 1; 2; 3 ]

(* The raw engine believes tampered payloads: the same adversary that the
   quorum tier absorbs visibly corrupts an unprotected run.  (The forged
   leader id is negative, so corruption is unambiguous.) *)
let test_byz_raw_run_is_corrupted () =
  let g = Gen.ring (Prng.create 11) ~n:13 in
  let corrupted =
    List.exists
      (fun seed ->
        let faults = byz_faults ~seed ~byz_prob:0.4 ~n:13 () in
        let r = Leader.run ~faults ~model:clique ~graph:g () in
        r.Leader.leader < 0)
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "some raw run elects a forged id" true corrupted

(* ------------------------------------------------------------------ *)
(* Detection at f > n/3                                                *)

let test_byz_over_tolerance_detected () =
  let g = Gen.erdos_renyi_connected (Prng.create 5) ~n:10 ~p:0.4 ~w_max:4 in
  let faults = byz_faults ~extra:1 ~seed:1 ~n:10 () in
  let _, diag = Bfs.run_byzantine ~faults ~model:clique ~graph:g ~source:4 () in
  Alcotest.(check bool) "tolerance exceeded reported" true
    diag.Byzantine.Diag.tolerance_exceeded;
  Alcotest.(check bool) "detected, not silent" false (Byzantine.Diag.ok diag)

(* ------------------------------------------------------------------ *)
(* Accounting and determinism                                          *)

let test_byz_echo_label_charged () =
  let g = Gen.erdos_renyi_connected (Prng.create 3) ~n:8 ~p:0.4 ~w_max:4 in
  let acc = Rounds.create ~bandwidth:(Model.bandwidth ~n:8) in
  let faults = byz_faults ~seed:2 ~n:8 () in
  let _ = Bfs.run_byzantine ~accountant:acc ~faults ~model:clique ~graph:g ~source:0 () in
  let breakdown = Rounds.breakdown acc in
  Alcotest.(check bool) "bfs label" true (List.mem_assoc "bfs" breakdown);
  Alcotest.(check bool) "byz-echo label" true
    (List.mem_assoc "bfs/byz-echo" breakdown);
  Alcotest.(check bool) "quorum overhead visible" true
    (List.assoc "bfs/byz-echo" breakdown > List.assoc "bfs" breakdown)

let test_byz_runs_are_deterministic () =
  let g = Gen.erdos_renyi_connected (Prng.create 7) ~n:10 ~p:0.4 ~w_max:8 in
  let run () =
    let faults = byz_faults ~seed:3 ~n:10 () in
    Sssp.run_byzantine ~faults ~model:clique ~graph:g ~source:0 ()
  in
  let a, da = run () and b, db = run () in
  Alcotest.(check bool) "identical states" true
    (Array.for_all2 Float.equal a.Sssp.dist b.Sssp.dist);
  Alcotest.(check int) "identical repair traffic"
    da.Byzantine.Diag.repairs_served db.Byzantine.Diag.repairs_served;
  Alcotest.(check int) "identical rounds" a.Sssp.rounds b.Sssp.rounds

let test_byz_rejects_non_clique () =
  let g = Gen.ring (Prng.create 1) ~n:7 in
  Alcotest.check_raises "needs the clique"
    (Invalid_argument "Byzantine.run: echo quorums need the clique topology")
    (fun () ->
      ignore (Bfs.run_byzantine ~model:Model.broadcast_congest ~graph:g ~source:0 ()))

(* ------------------------------------------------------------------ *)
(* run_reliable tier dispatch                                          *)

let test_reliability_tier_dispatch () =
  let g = Gen.erdos_renyi_connected (Prng.create 3) ~n:8 ~p:0.4 ~w_max:4 in
  let base = Bfs.run ~model:clique ~graph:g ~source:0 () in
  List.iter
    (fun tier ->
      let r = Bfs.run_reliable ~reliability:tier ~model:clique ~graph:g ~source:0 () in
      Alcotest.(check (array int))
        (Model.reliability_name tier ^ " tier matches")
        base.Bfs.dist r.Bfs.dist)
    [ Model.None; Model.Crash_safe; Model.Byzantine_safe ]

(* ------------------------------------------------------------------ *)
(* Fault-model properties (qcheck)                                     *)

let qcheck_budget_never_exceeded =
  QCheck.Test.make ~count:100 ~name:"adversarial_spent <= budget, monotone"
    QCheck.(
      triple (int_bound 5) (int_bound 30)
        (pair (float_bound_exclusive 0.9) (float_bound_exclusive 0.9)))
    (fun (budget, queries, (drop_prob, byz_prob)) ->
      let f =
        Fault.create ~seed:7
          (Fault.spec ~drop_prob ~adversarial_drops:budget
             ~byzantine:[ 0; 2 ] ~byz_prob ())
      in
      let ok = ref true in
      let last = ref 0 in
      for i = 0 to queries - 1 do
        ignore
          (Fault.copies f ~round:(1 + (i / 7)) ~src:(i mod 5) ~dst:(i mod 3)
            : int);
        let spent = Fault.adversarial_spent f in
        if spent < !last || spent > budget then ok := false;
        last := spent
      done;
      !ok)

let qcheck_tamper_is_pure =
  QCheck.Test.make ~count:100 ~name:"tamper verdicts independent of order"
    QCheck.(pair small_nat small_nat)
    (fun (seed, shift) ->
      let mk () =
        Fault.create ~seed:(1 + seed)
          (Fault.spec ~corrupt_prob:0.3 ~byzantine:[ 1 ] ~byz_prob:0.4 ())
      in
      let a = mk () and b = mk () in
      let slots = List.init 50 Fun.id in
      let probe f i =
        Fault.tamper f ~round:(1 + (i mod 5)) ~src:(i mod 4) ~dst:(i mod 7)
      in
      let rotated = List.filter (fun i -> i >= shift mod 50) slots
                    @ List.filter (fun i -> i < shift mod 50) slots in
      let va = List.map (probe a) slots in
      let vb = List.map (probe b) rotated in
      let sorted l = List.sort compare l in
      sorted (List.combine slots va)
      = sorted (List.combine rotated vb))

let qcheck_copies_duplicate_drop_disjoint =
  QCheck.Test.make ~count:100 ~name:"copies is always 0, 1 or 2"
    QCheck.(pair (float_bound_exclusive 0.9) (float_bound_exclusive 0.9))
    (fun (drop_prob, duplicate_prob) ->
      let f =
        Fault.create ~seed:3
          (Fault.spec ~drop_prob ~duplicate_prob ~adversarial_drops:2
             ~byzantine:[ 0 ] ~byz_prob:0.3 ())
      in
      List.for_all
        (fun i ->
          let c = Fault.copies f ~round:(1 + (i / 9)) ~src:(i mod 3) ~dst:(i mod 9) in
          c >= 0 && c <= 2)
        (List.init 120 Fun.id))

(* ------------------------------------------------------------------ *)
(* Gossip transport                                                    *)

module Gossip = Lbcc_net.Gossip

let ucc = Model.congested_clique

let spread ?faults ?seed ~n () =
  let g = Gen.ring (Prng.create 1) ~n in
  Gossip.spread ?faults ?seed ~model:ucc ~graph:g
    ~size_bits:(fun d -> Bits.int_bits d)
    ~rumors:(fun v -> if v mod 3 = 0 then Some (100 + v) else Option.None)
    ()

let test_gossip_full_coverage () =
  let r = spread ~n:24 () in
  Alcotest.(check bool) "converged" true r.Gossip.stats.Lbcc_net.Engine.converged;
  Alcotest.(check int) "rumor count" 8 r.Gossip.rumors;
  Alcotest.(check (float 0.0)) "full coverage" 1.0 r.Gossip.coverage;
  Array.iter
    (fun known ->
      Alcotest.(check int) "every vertex knows every rumor" 8 (List.length known);
      List.iter
        (fun (o, m) -> Alcotest.(check int) "payload intact" (100 + o) m)
        known)
    r.Gossip.known

let test_gossip_pull_recovers_from_drops () =
  let faults = Fault.create ~seed:5 (Fault.spec ~drop_prob:0.25 ()) in
  let r = spread ~faults ~n:24 () in
  Alcotest.(check (float 0.0)) "full coverage despite drops" 1.0
    r.Gossip.coverage;
  Alcotest.(check bool) "pulls happened" true (r.Gossip.pulls > 0)

let test_gossip_deterministic () =
  let a = spread ~seed:9 ~n:24 () and b = spread ~seed:9 ~n:24 () in
  Alcotest.(check int) "same pushes" a.Gossip.pushes b.Gossip.pushes;
  Alcotest.(check int) "same pulls" a.Gossip.pulls b.Gossip.pulls;
  Alcotest.(check int) "same rounds" a.Gossip.stats.Lbcc_net.Engine.rounds
    b.Gossip.stats.Lbcc_net.Engine.rounds;
  let c = spread ~seed:10 ~n:24 () in
  Alcotest.(check bool) "seed changes the epidemic" true
    (a.Gossip.pushes <> c.Gossip.pushes
    || a.Gossip.stats.Lbcc_net.Engine.rounds
       <> c.Gossip.stats.Lbcc_net.Engine.rounds)

let test_gossip_rejects_broadcast_model () =
  let g = Gen.ring (Prng.create 1) ~n:8 in
  Alcotest.check_raises "needs unicast clique"
    (Invalid_argument "Gossip.spread: needs the unicast congested clique model")
    (fun () ->
      ignore
        (Gossip.spread ~model:clique ~graph:g
           ~size_bits:(fun (d : int) -> Bits.int_bits d)
           ~rumors:(fun _ -> Option.None)
           ()))

let suites =
  [
    ( "byzantine",
      [
        Alcotest.test_case "lossless matches raw engine" `Quick
          test_byz_lossless_matches_raw;
        Alcotest.test_case "bfs survives f<=n/3 equivocation" `Quick
          test_byz_bfs_survives_equivocation;
        Alcotest.test_case "sssp survives f<=n/3 equivocation" `Quick
          test_byz_sssp_survives_equivocation;
        Alcotest.test_case "leader survives f<=n/3 equivocation" `Quick
          test_byz_leader_survives_equivocation;
        Alcotest.test_case "raw run is corrupted" `Quick
          test_byz_raw_run_is_corrupted;
        Alcotest.test_case "f>n/3 detected" `Quick
          test_byz_over_tolerance_detected;
        Alcotest.test_case "byz-echo label charged" `Quick
          test_byz_echo_label_charged;
        Alcotest.test_case "runs are deterministic" `Quick
          test_byz_runs_are_deterministic;
        Alcotest.test_case "rejects non-clique models" `Quick
          test_byz_rejects_non_clique;
        Alcotest.test_case "reliability tier dispatch" `Quick
          test_reliability_tier_dispatch;
      ] );
    ( "byzantine.properties",
      [
        QCheck_alcotest.to_alcotest qcheck_budget_never_exceeded;
        QCheck_alcotest.to_alcotest qcheck_tamper_is_pure;
        QCheck_alcotest.to_alcotest qcheck_copies_duplicate_drop_disjoint;
      ] );
    ( "gossip",
      [
        Alcotest.test_case "full coverage" `Quick test_gossip_full_coverage;
        Alcotest.test_case "pull recovers from drops" `Quick
          test_gossip_pull_recovers_from_drops;
        Alcotest.test_case "deterministic, seed-sensitive" `Quick
          test_gossip_deterministic;
        Alcotest.test_case "rejects broadcast models" `Quick
          test_gossip_rejects_broadcast_model;
      ] );
  ]
