(* lbcc-lint typed tier (DESIGN.md §13).

   The fixture corpus under [lint_fixtures/typed/] is typed in memory
   against the stdlib alone (Lint_tast.type_source) — no cmt files
   needed — with per-fixture configs pointing the passes' entry/door
   prefixes at the fixtures' own module names.  Each new rule has one
   positive and one negative fixture.  On top of that: the waiver
   grammar applied to a typed rule, the discover dedupe regression, the
   baseline subtraction, the SARIF shape, and a smoke test running the
   full [run_typed] pipeline over the real tree's cmts (skipped when the
   checkout or its build artifacts are unreachable). *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let type_fixture name ~modname =
  let source = read_file ("lint_fixtures/typed/" ^ name) in
  match Lint_tast.type_source ~path:("lib/fixtures/" ^ name) ~modname source with
  | Ok u -> u
  | Error d -> Alcotest.failf "fixture %s: %s" name d.Lint_diag.message

let no_waivers _path = Lint_suppress.scan ""

let analyze ?config ?(suppress_for = no_waivers) units =
  let graph = Lint_callgraph.build units in
  Lint_typed.analyze ?config graph ~suppress_for

let rules_fired diags = List.map (fun d -> d.Lint_diag.rule) diags

let default = Lint_typed.default_config

(* --------------------------------------------------------------------- *)
(* Determinism taint                                                      *)

let taint_config ~entries ~doors =
  { default with Lint_typed.taint_entries = entries; doors }

let taint_tests =
  [
    Alcotest.test_case "typ-det-taint: seed behind a helper fires" `Quick
      (fun () ->
        let u = type_fixture "taint_pos.ml" ~modname:"Taint_pos" in
        let config = taint_config ~entries:[ "Taint_pos" ] ~doors:[] in
        let diags = analyze ~config [ u ] in
        Alcotest.(check (list string))
          "one taint diagnostic" [ "typ-det-taint" ] (rules_fired diags);
        let d = List.hd diags in
        Alcotest.(check bool)
          "message names the seed" true
          (let m = d.Lint_diag.message in
           (* the witness chain and the resolved seed name are both there *)
           let has needle =
             let nl = String.length needle and ml = String.length m in
             let rec go i =
               i + nl <= ml && (String.sub m i nl = needle || go (i + 1))
             in
             go 0
           in
           has "Random" && has "Taint_pos.helper"));
    Alcotest.test_case "typ-det-taint: sanctioned door is clean" `Quick
      (fun () ->
        let u = type_fixture "taint_neg.ml" ~modname:"Taint_neg" in
        let config =
          taint_config ~entries:[ "Taint_neg" ] ~doors:[ "Taint_neg.Door" ]
        in
        Alcotest.(check (list string))
          "no diagnostics" [] (rules_fired (analyze ~config [ u ])));
    Alcotest.test_case "typ-det-taint: waiver at the seed sanctions it" `Quick
      (fun () ->
        let u = type_fixture "taint_pos.ml" ~modname:"Taint_pos" in
        let config = taint_config ~entries:[ "Taint_pos" ] ~doors:[] in
        let suppress_for _ =
          (* File-wide waiver, as a header comment would carry it. *)
          Lint_suppress.scan "(* lbcc-lint: allow-file typ-det-taint *)"
        in
        Alcotest.(check (list string))
          "waived" [] (rules_fired (analyze ~config ~suppress_for [ u ])));
  ]

(* --------------------------------------------------------------------- *)
(* Parallel-region races                                                  *)

let race_tests =
  [
    Alcotest.test_case "typ-par-race: shared captures fire" `Quick (fun () ->
        let u = type_fixture "race_pos.ml" ~modname:"Race_pos" in
        Alcotest.(check (list string))
          "captured ref + chunk-independent cell"
          [ "typ-par-race"; "typ-par-race" ]
          (rules_fired (analyze [ u ])));
    Alcotest.test_case "typ-par-race: chunk-local writes are clean" `Quick
      (fun () ->
        let u = type_fixture "race_neg.ml" ~modname:"Race_neg" in
        Alcotest.(check (list string))
          "no diagnostics" [] (rules_fired (analyze [ u ])));
  ]

(* --------------------------------------------------------------------- *)
(* Phase-accounting flow                                                  *)

let phase_config entries = { default with Lint_typed.phase_entries = entries }

let phase_tests =
  [
    Alcotest.test_case "typ-phase-flow: unphased primitive behind a call"
      `Quick (fun () ->
        let u = type_fixture "phase_pos.ml" ~modname:"Phase_pos" in
        let config = phase_config [ "Phase_pos.Api" ] in
        Alcotest.(check (list string))
          "flow violation + taxonomy violation"
          [ "typ-phase-flow"; "typ-phase-flow" ]
          (rules_fired (analyze ~config [ u ])));
    Alcotest.test_case "typ-phase-flow: phased path with valid label is clean"
      `Quick (fun () ->
        let u = type_fixture "phase_neg.ml" ~modname:"Phase_neg" in
        let config = phase_config [ "Phase_neg.Api" ] in
        Alcotest.(check (list string))
          "no diagnostics" [] (rules_fired (analyze ~config [ u ])));
  ]

(* --------------------------------------------------------------------- *)
(* Driver satellites: discover dedupe, baseline, SARIF                    *)

let discover_tests =
  [
    Alcotest.test_case "discover: overlapping path spellings dedupe" `Quick
      (fun () ->
        let canonical = Lint_driver.discover ~root:"lint_fixtures" [ "lib" ] in
        let overlapping =
          Lint_driver.discover ~root:"lint_fixtures"
            [ "lib"; "lib/"; "./lib"; "lib//proto"; "lib/./proto" ]
        in
        Alcotest.(check (list string))
          "same set as a single argument" canonical overlapping;
        let sorted_unique l = List.sort_uniq String.compare l = l in
        Alcotest.(check bool) "no duplicates" true (sorted_unique overlapping));
  ]

let diag ~rule ~file ~line ~message =
  {
    Lint_diag.rule;
    severity = Lint_diag.Error;
    file;
    line;
    col = 0;
    message;
  }

let baseline_tests =
  [
    Alcotest.test_case "baseline: known findings subtract as a multiset"
      `Quick (fun () ->
        let d1 = diag ~rule:"r" ~file:"a.ml" ~line:3 ~message:"m" in
        let d2 = diag ~rule:"r" ~file:"a.ml" ~line:90 ~message:"m" in
        let d3 = diag ~rule:"r" ~file:"b.ml" ~line:1 ~message:"other" in
        (* The baseline knows ONE instance of (r, a.ml, m) — recorded at a
           different line, which must not matter — and nothing about d3. *)
        let baseline = [ Lint_baseline.key d1 ] in
        let survivors = Lint_baseline.filter ~baseline [ d1; d2; d3 ] in
        Alcotest.(check int) "one absolved" 2 (List.length survivors);
        Alcotest.(check bool)
          "the second same-key instance still fails" true
          (List.memq d2 survivors || List.memq d1 survivors);
        Alcotest.(check bool) "unknown finding fails" true
          (List.memq d3 survivors));
    Alcotest.test_case "baseline: round-trips through the JSON report" `Quick
      (fun () ->
        let d = diag ~rule:"r" ~file:"a.ml" ~line:3 ~message:"m" in
        let r =
          { Lint_driver.root = "."; files = [ "a.ml" ]; diags = [ d ] }
        in
        let json =
          Lbcc_obs.Json.of_string
            (Lbcc_obs.Json.to_string (Lint_driver.to_json r))
        in
        match Lint_baseline.keys_of_json json with
        | Error e -> Alcotest.fail e
        | Ok keys ->
            Alcotest.(check (list string))
              "keys" [ Lint_baseline.key d ] keys;
            Alcotest.(check (list string))
              "filter drops it" []
              (List.map Lint_baseline.key
                 (Lint_baseline.filter ~baseline:keys [ d ])));
  ]

let sarif_tests =
  [
    Alcotest.test_case "SARIF 2.1.0 shape" `Quick (fun () ->
        let d =
          diag ~rule:"typ-det-taint" ~file:"lib/x.ml" ~line:7 ~message:"m"
        in
        let j = Lbcc_obs.Json.of_string (Lint_sarif.to_string [ d ]) in
        let get path json =
          List.fold_left
            (fun acc k ->
              match acc with
              | Some j -> (
                  match Lbcc_obs.Json.member k j with
                  | Some v -> Some v
                  | None -> None)
              | None -> None)
            (Some json) path
        in
        let str path =
          match get path j with Some (Lbcc_obs.Json.String s) -> s | _ -> "?"
        in
        Alcotest.(check string) "version" "2.1.0" (str [ "version" ]);
        Alcotest.(check bool)
          "$schema present" true
          (get [ "$schema" ] j <> None);
        match get [ "runs" ] j with
        | Some (Lbcc_obs.Json.Arr [ run ]) -> (
            Alcotest.(check string)
              "driver name" "lbcc-lint"
              (match get [ "tool"; "driver"; "name" ] run with
              | Some (Lbcc_obs.Json.String s) -> s
              | _ -> "?");
            Alcotest.(check bool)
              "driver lists rules" true
              (match get [ "tool"; "driver"; "rules" ] run with
              | Some (Lbcc_obs.Json.Arr (_ :: _)) -> true
              | _ -> false);
            match get [ "results" ] run with
            | Some (Lbcc_obs.Json.Arr [ result ]) ->
                Alcotest.(check string)
                  "ruleId" "typ-det-taint"
                  (match get [ "ruleId" ] result with
                  | Some (Lbcc_obs.Json.String s) -> s
                  | _ -> "?");
                let loc =
                  match get [ "locations" ] result with
                  | Some (Lbcc_obs.Json.Arr [ l ]) -> l
                  | _ -> Alcotest.fail "one location expected"
                in
                Alcotest.(check string)
                  "uri" "lib/x.ml"
                  (match
                     get
                       [ "physicalLocation"; "artifactLocation"; "uri" ]
                       loc
                   with
                  | Some (Lbcc_obs.Json.String s) -> s
                  | _ -> "?");
                Alcotest.(check bool)
                  "1-based line" true
                  (match
                     get [ "physicalLocation"; "region"; "startLine" ] loc
                   with
                  | Some (Lbcc_obs.Json.Int 7) -> true
                  | _ -> false)
            | _ -> Alcotest.fail "one result expected")
        | _ -> Alcotest.fail "one run expected");
  ]

(* --------------------------------------------------------------------- *)
(* Real-tree smoke                                                        *)

let find_repo_root () =
  let rec up dir n =
    if n = 0 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir ".git")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 8

let smoke_tests =
  [
    Alcotest.test_case "real tree lints clean under --typed" `Quick (fun () ->
        match find_repo_root () with
        | None -> () (* not running from a checkout; make lint-typed covers CI *)
        | Some root ->
            if not (Sys.file_exists (Filename.concat root "_build/default/lib"))
            then () (* no cmts staged; make lint-typed covers CI *)
            else
              let r = Lint_driver.run_typed ~root [ "lib" ] in
              List.iter
                (fun d -> Printf.printf "%s\n" (Lint_diag.to_string d))
                r.Lint_driver.diags;
              Alcotest.(check int) "errors" 0 (Lint_driver.errors r));
    Alcotest.test_case "missing cmts raise Typed_unavailable" `Quick (fun () ->
        (* The fixture tree has no _build: the typed path must refuse with
           the actionable message rather than analyze nothing. *)
        match Lint_driver.run_typed ~root:"lint_fixtures" [ "lib" ] with
        | _ -> Alcotest.fail "expected Typed_unavailable"
        | exception Lint_driver.Typed_unavailable msg ->
            Alcotest.(check bool)
              "mentions dune build" true
              (let needle = "dune build" in
               let nl = String.length needle and ml = String.length msg in
               let rec go i =
                 i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
               in
               go 0));
  ]

let suites =
  [
    ( "lint-typed",
      taint_tests @ race_tests @ phase_tests @ discover_tests @ baseline_tests
      @ sarif_tests @ smoke_tests );
  ]
