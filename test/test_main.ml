let () =
  Alcotest.run "laplacian_bcc"
    (Test_util.suites @ Test_linalg.suites @ Test_graph.suites
   @ Test_net.suites @ Test_fault.suites @ Test_byzantine.suites
   @ Test_spanner.suites @ Test_sparsifier.suites
   @ Test_laplacian.suites @ Test_lp.suites @ Test_ipm.suites
   @ Test_flow.suites @ Test_dist.suites @ Test_io.suites @ Test_core.suites
   @ Test_obs.suites @ Test_service.suites @ Test_update.suites
   @ Test_serve.suites
   @ Test_lint.suites @ Test_lint_typed.suites
   @ Test_determinism.suites @ Test_packed.suites @ Test_engine_diff.suites
   @ Test_fingerprints.suites @ Test_conformance.suites)
