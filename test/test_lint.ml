(* lbcc-lint: the rule pass itself.

   Each rule is exercised positively (a seeded fixture under
   [lint_fixtures/] must fire it) and negatively (the matching clean or
   out-of-scope fixture must not), the suppression grammar is covered both
   ways, and a smoke test lints the real source tree — which must be clean,
   mirroring what `make lint` enforces in CI. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Fixtures are linted under their fixture-relative path, so the rule
   scoping (lib/proto vs lib/util vs lib/obs) applies as in the real tree. *)
let lint_fixture rel =
  Lint_driver.lint_source ~path:rel (read_file ("lint_fixtures/" ^ rel))

let rules_fired rel = List.map (fun d -> d.Lint_diag.rule) (lint_fixture rel)

let count rule rel =
  List.length (List.filter (String.equal rule) (rules_fired rel))

let check_fires rule ?(times = 1) rel () =
  Alcotest.(check int)
    (Printf.sprintf "%s fires %dx in %s" rule times rel)
    times (count rule rel)

let check_clean rel () =
  Alcotest.(check (list string))
    (Printf.sprintf "%s is clean" rel)
    [] (rules_fired rel)

(* --------------------------------------------------------------------- *)
(* Per-rule positives                                                     *)

let positive_cases =
  [
    ("det-unseeded-random", 2, "lib/proto/bad_random.ml");
    ("det-unordered-hashtbl", 2, "lib/proto/bad_hashtbl.ml");
    ("det-wall-clock", 2, "lib/proto/bad_clock.ml");
    ("det-raw-domain", 1, "lib/proto/bad_domain.ml");
    ("det-float-poly-compare", 2, "lib/proto/bad_float.ml");
    ("acct-unscoped-broadcast", 1, "lib/proto/bad_acct.ml");
    ("acct-phase-taxonomy", 3, "lib/proto/bad_label.ml");
    ("hyg-obj-magic", 1, "lib/proto/bad_hygiene.ml");
    ("hyg-ignored-result", 1, "lib/proto/bad_hygiene.ml");
    ("hyg-assert-false", 1, "lib/proto/bad_hygiene.ml");
    ("lint-directive", 2, "lib/proto/bad_waiver.ml");
  ]

let positive_tests =
  List.map
    (fun (rule, times, rel) ->
      Alcotest.test_case (rule ^ " fires") `Quick (check_fires rule ~times rel))
    positive_cases

(* --------------------------------------------------------------------- *)
(* Negatives: clean protocol code, and containment-module scoping         *)

let negative_tests =
  [
    Alcotest.test_case "clean protocol module" `Quick
      (check_clean "lib/proto/good_protocol.ml");
    Alcotest.test_case "pool.ml may spawn domains" `Quick
      (check_clean "lib/util/pool.ml");
    Alcotest.test_case "lib/obs may read the clock" `Quick
      (check_clean "lib/obs/clock.ml");
    Alcotest.test_case "scoping: same source, different path" `Quick (fun () ->
        (* The clock fixture re-linted under a protocol path must fire: the
           rule keys on the path, not the contents. *)
        let source = read_file "lint_fixtures/lib/obs/clock.ml" in
        let diags =
          Lint_driver.lint_source ~path:"lib/proto/clock.ml" source
        in
        Alcotest.(check (list string))
          "det-wall-clock fires outside lib/obs" [ "det-wall-clock" ]
          (List.map (fun d -> d.Lint_diag.rule) diags));
  ]

(* --------------------------------------------------------------------- *)
(* Suppression grammar                                                    *)

let suppression_tests =
  [
    Alcotest.test_case "same-line and line-above waivers" `Quick (fun () ->
        let src =
          "let a () = Sys.time () (* lbcc-lint" ^ ": allow det-wall-clock *)\n"
          ^ "(* lbcc-lint" ^ ": allow det-wall-clock *)\n"
          ^ "let b () = Sys.time ()\n"
        in
        Alcotest.(check (list string))
          "both waived" []
          (List.map
             (fun d -> d.Lint_diag.rule)
             (Lint_driver.lint_source ~path:"lib/proto/x.ml" src)));
    Alcotest.test_case "file-wide waiver" `Quick (fun () ->
        let src =
          "(* lbcc-lint" ^ ": allow-file det-wall-clock *)\n"
          ^ "let a () = Sys.time ()\nlet b () = Unix.gettimeofday ()\n"
        in
        Alcotest.(check (list string))
          "file-wide waiver covers both" []
          (List.map
             (fun d -> d.Lint_diag.rule)
             (Lint_driver.lint_source ~path:"lib/proto/x.ml" src)));
    Alcotest.test_case "waiver does not bleed to other rules" `Quick (fun () ->
        let src =
          "(* lbcc-lint" ^ ": allow det-wall-clock *)\n"
          ^ "let a () = Random.bits ()\n"
        in
        Alcotest.(check (list string))
          "random still fires" [ "det-unseeded-random" ]
          (List.map
             (fun d -> d.Lint_diag.rule)
             (Lint_driver.lint_source ~path:"lib/proto/x.ml" src)));
    Alcotest.test_case "parse error is reported, not raised" `Quick (fun () ->
        let diags =
          Lint_driver.lint_source ~path:"lib/proto/x.ml" "let let let"
        in
        Alcotest.(check (list string))
          "parse-error diagnostic" [ "parse-error" ]
          (List.map (fun d -> d.Lint_diag.rule) diags));
  ]

(* --------------------------------------------------------------------- *)
(* Driver over the fixture tree, and the real tree                        *)

let driver_tests =
  [
    Alcotest.test_case "fixture tree: error and warning totals" `Quick
      (fun () ->
        let r = Lint_driver.run ~root:"lint_fixtures" [ "lib" ] in
        Alcotest.(check int) "files scanned" 12 (List.length r.Lint_driver.files);
        Alcotest.(check int) "errors" 17 (Lint_driver.errors r);
        Alcotest.(check int) "warnings" 1 (Lint_driver.warnings r));
    Alcotest.test_case "report is valid JSON with stable totals" `Quick
      (fun () ->
        let r = Lint_driver.run ~root:"lint_fixtures" [ "lib" ] in
        let j =
          Lbcc_obs.Json.of_string
            (Lbcc_obs.Json.to_string (Lint_driver.to_json r))
        in
        let member k =
          match Lbcc_obs.Json.member k j with
          | Some v -> v
          | None -> Alcotest.failf "missing key %s" k
        in
        Alcotest.(check string)
          "schema" "lbcc-lint/1"
          (match member "schema" with
          | Lbcc_obs.Json.String s -> s
          | _ -> "not-a-string");
        Alcotest.(check bool)
          "diagnostics count matches"
          true
          (match member "diagnostics" with
          | Lbcc_obs.Json.Arr l -> List.length l = 18
          | _ -> false));
  ]

(* Walk up from the test's cwd (_build/default/test) to the repository
   root and lint the real tree: it must be clean, like `make lint`.  Skip
   silently when no repository root is reachable (e.g. an exported build
   directory). *)
let find_repo_root () =
  let rec up dir n =
    if n = 0 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir ".git")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 8

let smoke_tests =
  [
    Alcotest.test_case "real source tree lints clean" `Quick (fun () ->
        match find_repo_root () with
        | None -> () (* not running from a checkout; @lint covers CI *)
        | Some root ->
            let r =
              Lint_driver.run ~root [ "lib"; "bin"; "bench"; "examples" ]
            in
            List.iter
              (fun d -> Printf.printf "%s\n" (Lint_diag.to_string d))
              r.Lint_driver.diags;
            Alcotest.(check int) "errors" 0 (Lint_driver.errors r);
            Alcotest.(check int) "warnings" 0 (Lint_driver.warnings r));
  ]

let suites =
  [
    ( "lint",
      positive_tests @ negative_tests @ suppression_tests @ driver_tests
      @ smoke_tests );
  ]
