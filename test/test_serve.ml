(* The serve stack: wire protocol round-trips, scheduler determinism and
   admission control, daemon drain semantics, and bit-identity of coalesced
   daemon responses against direct Prepared solves — plus the Metrics
   quantile estimator the daemon's SLO snapshot is built on. *)

module Metrics = Lbcc_obs.Metrics
module Vec = Lbcc_linalg.Vec
module Graph = Lbcc_graph.Graph
module Pool = Lbcc_util.Pool
module Ctx = Lbcc_service.Ctx
module Prepared = Lbcc_service.Prepared
module Proto = Lbcc_serve.Proto
module Sched = Lbcc_serve.Sched
module Fleet = Lbcc_serve.Fleet
module Workload = Lbcc_serve.Workload
module Daemon = Lbcc_serve.Daemon

(* ------------------------------------------------------------------ *)
(* Metrics quantiles (log2-histogram interpolation)                    *)

let summary_of values =
  let m = Metrics.create () in
  List.iter (Metrics.observe (Some m) "h") values;
  match Metrics.histogram m "h" with
  | Some s -> s
  | None -> Alcotest.fail "histogram missing"

let test_quantile_endpoints () =
  let s = summary_of [ 3.0; 9.0; 27.0; 81.0 ] in
  Alcotest.(check (float 0.0)) "q=0 is exact min" 3.0 (Metrics.quantile s 0.0);
  Alcotest.(check (float 0.0)) "q=1 is exact max" 81.0 (Metrics.quantile s 1.0)

let test_quantile_constant () =
  (* Every observation equal: all quantiles must collapse to that value
     (the clamp to [min, max] beats the bucket midpoint). *)
  let s = summary_of [ 5.0; 5.0; 5.0; 5.0; 5.0 ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.2f of constant" q)
        5.0 (Metrics.quantile s q))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_quantile_uniform_bucket_error () =
  (* Uniform 1..1024: a log2 histogram can misplace a quantile by at most
     its bucket width, i.e. a factor of 2. *)
  let s = summary_of (List.init 1024 (fun i -> float_of_int (i + 1))) in
  let p50 = Metrics.quantile s 0.5 in
  let p99 = Metrics.quantile s 0.99 in
  Alcotest.(check bool)
    "p50 within one bucket of 512" true
    (p50 >= 256.0 && p50 <= 1024.0);
  Alcotest.(check bool)
    "p99 within one bucket of 1014" true
    (p99 >= 512.0 && p99 <= 1024.0);
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99)

let test_quantile_bimodal () =
  (* 90 small + 10 large: p50 must sit in the small mode, p99 in the
     large one — the shape the latency SLO snapshot depends on. *)
  let values =
    List.init 90 (fun _ -> 1.5) @ List.init 10 (fun _ -> 1000.0)
  in
  let s = summary_of values in
  Alcotest.(check bool) "p50 in small mode" true (Metrics.quantile s 0.5 <= 2.0);
  Alcotest.(check bool)
    "p99 in large mode" true
    (Metrics.quantile s 0.99 >= 512.0)

let test_quantile_monotone () =
  let s = summary_of (List.init 200 (fun i -> Float.pow 1.3 (float_of_int (i mod 37)))) in
  let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
  let vals = List.map (Metrics.quantile s) qs in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone in q" true (a <= b);
        check_sorted rest
    | _ -> ()
  in
  check_sorted vals

let test_quantile_errors () =
  let s = summary_of [ 1.0 ] in
  Alcotest.check_raises "q < 0" (Invalid_argument "Metrics.quantile: q outside [0, 1]")
    (fun () -> ignore (Metrics.quantile s (-0.1) : float));
  let m = Metrics.create () in
  Alcotest.(check (option (float 0.0)))
    "quantile_of on missing histogram" None
    (Metrics.quantile_of m "absent" 0.5)

(* ------------------------------------------------------------------ *)
(* Proto: codec round-trips and incremental framing                    *)

let roundtrip_req req =
  let frame = Proto.encode_request ~id:42 req in
  let payload = Bytes.sub frame 4 (Bytes.length frame - 4) in
  Proto.decode_request payload

let roundtrip_resp ~id resp =
  let frame = Proto.encode_response ~id resp in
  let payload = Bytes.sub frame 4 (Bytes.length frame - 4) in
  Proto.decode_response payload

let test_proto_request_roundtrip () =
  let b = [| 1.5; -2.25; Float.min_float; 0.75 |] in
  List.iter
    (fun req ->
      let id, req' = roundtrip_req req in
      Alcotest.(check int) "id echoed" 42 id;
      Alcotest.(check bool)
        "request round-trips" true
        (Bytes.equal
           (Proto.encode_request ~id:42 req)
           (Proto.encode_request ~id:42 req')))
    [
      Proto.Solve { name = "g0"; eps = 1e-8; b };
      Proto.Resistance { name = "grid-1"; eps = 1e-10; s = 0; t = 17 };
      Proto.Flow { name = "f0" };
      Proto.Update
        {
          name = "g0";
          delta =
            Graph.Delta.of_ops
              [
                Graph.Delta.Insert { Graph.u = 0; v = 5; w = 2.0 };
                Graph.Delta.Delete 3;
                Graph.Delta.Reweight (7, 0.25);
              ];
        };
      Proto.Update { name = "empty-delta"; delta = Graph.Delta.of_ops [] };
      Proto.Stats;
      Proto.Info;
      Proto.Shutdown;
    ]

let test_proto_response_roundtrip () =
  List.iter
    (fun resp ->
      let id, resp' = roundtrip_resp ~id:7 resp in
      Alcotest.(check int) "id echoed" 7 id;
      Alcotest.(check bool)
        "response round-trips" true
        (Bytes.equal
           (Proto.encode_response ~id:7 resp)
           (Proto.encode_response ~id:7 resp')))
    [
      Proto.Solution
        {
          solution = [| 0.1; -0.2; 0.30000000000000004 |];
          residual = 3.5e-16;
          iterations = 19;
          rounds = 132;
          bits = 7392;
        };
      Proto.Resistance_r { resistance = 0.07812500000000001; rounds = 150; bits = 900 };
      Proto.Flow_r { flow = [| 1.0; 0.0; 2.0 |]; value = 3; cost = 11; rounds = 44; bits = 220 };
      Proto.Update_r
        { n = 24; m = 71; fingerprint = "00deadbeef00c0de"; rounds = 210; bits = 4410 };
      Proto.Json_r "{\"schema\":\"lbcc-serve-stats/1\"}";
      Proto.Ok_r;
      Proto.Error_r { code = Proto.Overloaded; message = "admission queue full" };
      Proto.Error_r { code = Proto.Bad_request; message = "" };
      Proto.Error_r { code = Proto.Internal; message = "solver raised" };
    ]

let test_proto_float_bits_exact () =
  (* The identity claims need the codec lossless on every float, including
     awkward ones. *)
  let b = [| 0.1 +. 0.2; -0.0; 1e-300; Float.max_float; Float.min_float |] in
  match roundtrip_req (Proto.Solve { name = "g"; eps = 0.1 +. 0.2; b }) with
  | _, Proto.Solve { b = b'; eps; _ } ->
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "bit pattern %d" i)
            true
            (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float b'.(i))))
        b;
      Alcotest.(check bool) "eps bits" true
        (Int64.equal (Int64.bits_of_float (0.1 +. 0.2)) (Int64.bits_of_float eps))
  | _ -> Alcotest.fail "wrong request decoded"

let test_proto_malformed () =
  let bad_opcode = Bytes.make 6 '\x7f' in
  Bytes.set bad_opcode 0 (Char.chr Proto.version);
  Alcotest.check_raises "unknown opcode"
    (Proto.Decode_error "unknown request opcode 0x7f") (fun () ->
      ignore (Proto.decode_request bad_opcode : int * Proto.request));
  (* A v1 frame (or any other version) is refused before opcode dispatch. *)
  Alcotest.check_raises "version mismatch"
    (Proto.Decode_error
       (Printf.sprintf "protocol version 1, expected %d" Proto.version))
    (fun () ->
      ignore (Proto.decode_request (Bytes.make 6 '\x01') : int * Proto.request));
  let frame = Proto.encode_request ~id:1 (Proto.Flow { name = "f0" }) in
  let payload = Bytes.sub frame 4 (Bytes.length frame - 4) in
  let padded = Bytes.cat payload (Bytes.make 1 '\x00') in
  (try
     ignore (Proto.decode_request padded : int * Proto.request);
     Alcotest.fail "trailing bytes accepted"
   with Proto.Decode_error _ -> ());
  try
    ignore (Proto.decode_request (Bytes.sub payload 0 3) : int * Proto.request);
    Alcotest.fail "truncated payload accepted"
  with Proto.Decode_error _ -> ()

let test_proto_reader_chunked () =
  (* Feed two frames one byte at a time; both must pop out intact. *)
  let f1 = Proto.encode_request ~id:1 (Proto.Resistance { name = "g1"; eps = 1e-10; s = 3; t = 9 }) in
  let f2 = Proto.encode_request ~id:2 Proto.Stats in
  let stream = Bytes.cat f1 f2 in
  let r = Proto.Reader.create () in
  let popped = ref [] in
  Bytes.iter
    (fun c ->
      Proto.Reader.feed r (Bytes.make 1 c) 1;
      match Proto.Reader.next r with
      | Some p -> popped := p :: !popped
      | None -> ())
    stream;
  match List.rev !popped with
  | [ p1; p2 ] ->
      Alcotest.(check int) "first id" 1 (fst (Proto.decode_request p1));
      Alcotest.(check int) "second id" 2 (fst (Proto.decode_request p2));
      Alcotest.(check int) "nothing left buffered" 0 (Proto.Reader.buffered r)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 frames, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Sched: determinism, admission, window                               *)

(* A scripted event trace: Admit (key, tag) or Dispatch force.  Running it
   returns the rejected tags and the dispatched batches. *)
type event = Admit of string * int | Dispatch of bool

let run_trace cfg events =
  let s = Sched.create cfg in
  let rejected = ref [] in
  let batches = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Admit (key, tag) ->
          if not (Sched.admit s ~key tag) then rejected := tag :: !rejected
      | Dispatch force -> (
          match Sched.dispatch ~force s with
          | Some b -> batches := (b.Sched.key, b.Sched.items) :: !batches
          | None -> ()))
    events;
  (List.rev !rejected, List.rev !batches, Sched.pending s)

let zipf_events ~n ~dispatch_every =
  let cdf = Workload.zipf_cdf ~s:1.0 ~n:4 in
  let prng = Lbcc_util.Prng.create 99 in
  List.concat
    (List.init n (fun i ->
         let key = Printf.sprintf "k%d" (Workload.sample_zipf prng cdf) in
         if (i + 1) mod dispatch_every = 0 then
           [ Admit (key, i); Dispatch false; Dispatch true ]
         else [ Admit (key, i) ]))

let test_sched_trace_deterministic () =
  let cfg = { Sched.max_queue = 64; max_batch = 4; window = 2; coalesce = true } in
  let events = zipf_events ~n:120 ~dispatch_every:3 @ [ Dispatch true; Dispatch true ] in
  let r1 = run_trace cfg events in
  let r2 = run_trace cfg events in
  Alcotest.(check bool) "identical rejects/batches/pending" true (r1 = r2)

let test_sched_rejects_exact_tail () =
  (* Admission control must reject exactly the over-budget tail: with a
     queue of Q, requests 0..Q-1 enter and Q..N-1 bounce, in order. *)
  let q = 8 and n = 13 in
  let cfg = { Sched.max_queue = q; max_batch = 4; window = 2; coalesce = true } in
  let events = List.init n (fun i -> Admit ("hot", i)) in
  let rejected, _, pending = run_trace cfg events in
  Alcotest.(check (list int)) "exactly the tail rejected"
    (List.init (n - q) (fun i -> q + i))
    rejected;
  Alcotest.(check int) "queue holds the head" q pending

let test_sched_admits_after_dispatch () =
  let cfg = { Sched.max_queue = 2; max_batch = 2; window = 0; coalesce = true } in
  let s = Sched.create cfg in
  Alcotest.(check bool) "1 in" true (Sched.admit s ~key:"a" 1);
  Alcotest.(check bool) "2 in" true (Sched.admit s ~key:"a" 2);
  Alcotest.(check bool) "3 bounced" false (Sched.admit s ~key:"a" 3);
  (match Sched.dispatch s with
  | Some b -> Alcotest.(check (list int)) "batch drains both" [ 1; 2 ] b.Sched.items
  | None -> Alcotest.fail "window 0 must dispatch");
  Alcotest.(check bool) "slot freed" true (Sched.admit s ~key:"a" 4);
  Alcotest.(check int) "counters" 3 (Sched.admitted s);
  Alcotest.(check int) "rejections counted" 1 (Sched.rejected s)

let test_sched_window_prevents_starvation () =
  (* A lonely fingerprint must dispatch once [window] batches complete,
     even while a hot bin keeps filling. *)
  let cfg = { Sched.max_queue = 64; max_batch = 2; window = 2; coalesce = true } in
  let s = Sched.create cfg in
  ignore (Sched.admit s ~key:"lonely" 0 : bool);
  let tag = ref 100 in
  let feed_hot () =
    ignore (Sched.admit s ~key:"hot" !tag : bool);
    ignore (Sched.admit s ~key:"hot" (!tag + 1) : bool);
    incr tag;
    incr tag
  in
  feed_hot ();
  let k1 = match Sched.dispatch s with Some b -> b.Sched.key | None -> "-" in
  Alcotest.(check string) "hot batch first (full)" "hot" k1;
  feed_hot ();
  let k2 = match Sched.dispatch s with Some b -> b.Sched.key | None -> "-" in
  Alcotest.(check string) "hot again" "hot" k2;
  feed_hot ();
  (* two batches have completed: the lonely head is now over the window
     and must preempt the (full) hot bin. *)
  let k3 = match Sched.dispatch s with Some b -> b.Sched.key | None -> "-" in
  Alcotest.(check string) "lonely bin preempts after window" "lonely" k3

let test_sched_serial_mode () =
  let cfg = { Sched.max_queue = 16; max_batch = 8; window = 0; coalesce = false } in
  let s = Sched.create cfg in
  List.iter (fun i -> ignore (Sched.admit s ~key:"k" i : bool)) [ 0; 1; 2 ];
  let rec drain acc =
    match Sched.dispatch ~force:true s with
    | Some b -> drain (b.Sched.occupancy :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "serial batches carry one request" [ 1; 1; 1 ]
    (drain [])

(* ------------------------------------------------------------------ *)
(* Daemon: drain, rejection responses, determinism across domains      *)

let small_fleet =
  lazy
    (Fleet.build
       { Fleet.default_config with Fleet.graphs = 2; vertices = 24; networks = 1 })

let feed_requests daemon reqs =
  List.iteri (fun id req -> Daemon.handle daemon ~client:0 ~id req) reqs

let solve_req fleet ~graph ~op_seed =
  let e = List.nth fleet.Fleet.entries graph in
  Proto.Solve
    {
      name = e.Fleet.name;
      eps = 1e-8;
      b = Workload.rhs ~n:(Graph.n e.Fleet.graph) ~op_seed;
    }

let decode_outputs daemon =
  List.map
    (fun (_, frame) ->
      Proto.decode_response (Bytes.sub frame 4 (Bytes.length frame - 4)))
    (Daemon.take_output daemon)

let test_daemon_drain_answers_everything () =
  let fleet = Lazy.force small_fleet in
  let cfg =
    {
      Daemon.default_config with
      Daemon.sched = { Sched.max_queue = 32; max_batch = 4; window = 8; coalesce = true };
    }
  in
  let d = Daemon.create cfg fleet in
  let reqs = List.init 6 (fun i -> solve_req fleet ~graph:(i mod 2) ~op_seed:(3 * i + 1)) in
  feed_requests d reqs;
  Alcotest.(check int) "all admitted" 6 (Daemon.pending d);
  (* window 8 with no completed batches: nothing is ripe yet *)
  Alcotest.(check bool) "nothing ripe before window" false (Daemon.tick d);
  Daemon.request_shutdown d;
  Daemon.handle d ~client:0 ~id:99
    (solve_req fleet ~graph:0 ~op_seed:77);
  Daemon.drain d;
  Alcotest.(check int) "queue empty after drain" 0 (Daemon.pending d);
  let outs = decode_outputs d in
  Alcotest.(check int) "every request answered" 7 (List.length outs);
  let overloaded =
    List.filter
      (fun (_, r) ->
        match r with
        | Proto.Error_r { code = Proto.Overloaded; _ } -> true
        | _ -> false)
      outs
  in
  Alcotest.(check (list int)) "only the post-shutdown request bounced" [ 99 ]
    (List.map fst overloaded);
  Alcotest.(check int) "served counts the admitted work" 6 (Daemon.served d)

let test_daemon_rejects_over_budget_tail () =
  let fleet = Lazy.force small_fleet in
  let cfg =
    {
      Daemon.default_config with
      Daemon.sched = { Sched.max_queue = 4; max_batch = 4; window = 4; coalesce = true };
    }
  in
  let d = Daemon.create cfg fleet in
  let reqs = List.init 7 (fun i -> solve_req fleet ~graph:0 ~op_seed:(2 * i + 1)) in
  feed_requests d reqs;
  Daemon.drain d;
  let outs = decode_outputs d in
  let rejected_ids =
    List.filter_map
      (fun (id, r) ->
        match r with
        | Proto.Error_r { code = Proto.Overloaded; _ } -> Some id
        | _ -> None)
      outs
  in
  Alcotest.(check (list int)) "exactly ids 4..6 rejected" [ 4; 5; 6 ] rejected_ids;
  Alcotest.(check int) "seven answers for seven requests" 7 (List.length outs)

let test_daemon_bad_requests () =
  let fleet = Lazy.force small_fleet in
  let d = Daemon.create Daemon.default_config fleet in
  Daemon.handle d ~client:0 ~id:0 (Proto.Solve { name = "nope"; eps = 1e-8; b = [||] });
  Daemon.handle d ~client:0 ~id:1
    (Proto.Solve { name = "g0"; eps = 1e-8; b = [| 1.0; -1.0 |] });
  Daemon.handle d ~client:0 ~id:2
    (Proto.Resistance { name = "g0"; eps = 1e-10; s = 0; t = 999 });
  Daemon.handle d ~client:0 ~id:3 (Proto.Flow { name = "f9" });
  let outs = decode_outputs d in
  Alcotest.(check int) "four immediate answers" 4 (List.length outs);
  List.iter
    (fun (_, r) ->
      match r with
      | Proto.Error_r { code = Proto.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "expected Bad_request")
    outs;
  Alcotest.(check int) "nothing admitted" 0 (Daemon.pending d)

(* Updates interleave with solves through the same admit trace: the daemon
   applies the delta, patches (or recomputes) the fingerprint, and later
   solves run against the mutated graph.  Updates mutate fleet state, so
   each run builds a private fleet rather than touching [small_fleet]. *)
let update_fleet () =
  Fleet.build
    { Fleet.default_config with Fleet.graphs = 2; vertices = 24; networks = 1 }

let test_daemon_update () =
  let run_trace domains =
    Pool.set_default_domains domains;
    let fleet = update_fleet () in
    let d = Daemon.create Daemon.default_config fleet in
    let e = List.hd fleet.Fleet.entries in
    let g0 = e.Fleet.graph in
    let delta =
      Graph.Delta.of_ops
        [
          Graph.Delta.Insert { Graph.u = 0; v = Graph.n g0 - 1; w = 3.0 };
          Graph.Delta.Reweight (0, 2.5);
        ]
    in
    Daemon.handle d ~client:0 ~id:0 (Proto.Update { name = e.Fleet.name; delta });
    Daemon.drain d;
    let upd = decode_outputs d in
    Daemon.handle d ~client:0 ~id:1 (solve_req fleet ~graph:0 ~op_seed:9);
    Daemon.drain d;
    let solved = decode_outputs d in
    (upd, solved, Graph.apply g0 delta, fleet)
  in
  let upd, solved, g', fleet = run_trace 1 in
  (match upd with
  | [ (0, Proto.Update_r { n; m; fingerprint; _ }) ] ->
      Alcotest.(check int) "n unchanged" (Graph.n g') n;
      Alcotest.(check int) "one edge added" (Graph.m g') m;
      Alcotest.(check string) "fingerprint matches recompute"
        (Lbcc_service.Fingerprint.to_hex (Lbcc_service.Fingerprint.graph g'))
        fingerprint
  | _ -> Alcotest.fail "expected a single Update_r");
  (* the fleet entry now holds the mutated graph *)
  let e = List.hd fleet.Fleet.entries in
  Alcotest.(check int) "fleet graph mutated" (Graph.m g') (Graph.m e.Fleet.graph);
  (match solved with
  | [ (1, Proto.Solution { residual; _ }) ] ->
      Alcotest.(check bool) "solve on mutated graph converges" true
        (Float.abs residual < 1e-6)
  | _ -> Alcotest.fail "expected a Solution on the mutated graph");
  (* Same trace at 2 and 4 domains: the full response byte stream is
     bit-identical — update ordering is a pure function of the admit trace. *)
  let render (upd, solved, _, _) =
    String.concat "|"
      (List.map
         (fun (id, r) -> Bytes.to_string (Proto.encode_response ~id r))
         (upd @ solved))
  in
  let r1 = render (upd, solved, g', fleet) in
  let r2 = render (run_trace 2) in
  let r4 = render (run_trace 4) in
  Pool.set_default_domains 1;
  Alcotest.(check string) "1 vs 2 domains identical" r1 r2;
  Alcotest.(check string) "1 vs 4 domains identical" r1 r4

let test_daemon_update_bad () =
  let fleet = update_fleet () in
  let d = Daemon.create Daemon.default_config fleet in
  let e = List.hd fleet.Fleet.entries in
  let m = Graph.m e.Fleet.graph in
  Daemon.handle d ~client:0 ~id:0
    (Proto.Update
       { name = "nope"; delta = Graph.Delta.of_ops [ Graph.Delta.Delete 0 ] });
  Daemon.handle d ~client:0 ~id:1
    (Proto.Update
       { name = e.Fleet.name; delta = Graph.Delta.of_ops [ Graph.Delta.Delete m ] });
  Daemon.handle d ~client:0 ~id:2
    (Proto.Update
       {
         name = e.Fleet.name;
         delta =
           Graph.Delta.of_ops
             [ Graph.Delta.Insert { Graph.u = 0; v = Graph.n e.Fleet.graph; w = 1.0 } ];
       });
  let outs = decode_outputs d in
  Alcotest.(check int) "three immediate rejections" 3 (List.length outs);
  List.iter
    (fun (_, r) ->
      match r with
      | Proto.Error_r { code = Proto.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "expected Bad_request")
    outs;
  Alcotest.(check int) "nothing admitted" 0 (Daemon.pending d);
  Alcotest.(check int) "fleet untouched" m (Graph.m e.Fleet.graph)

(* The scheduler trace fully determines batch composition, responses and
   accounting — at every worker-pool size.  This is the daemon-level
   replayability contract: run the same request trace at 1/2/4 domains and
   compare the full output byte stream and the accountant breakdown. *)
let test_daemon_deterministic_across_domains () =
  let fleet = Lazy.force small_fleet in
  let trace_cfg =
    { Workload.default_config with Workload.clients = 3; per_client = 4; graphs = 2 }
  in
  let trace = Workload.trace trace_cfg in
  let reqs =
    Array.to_list trace |> List.concat_map Array.to_list
    |> List.map (fun op ->
           match op with
           | Workload.Solve_op { graph; op_seed } -> solve_req fleet ~graph ~op_seed
           | Workload.Resistance_op { graph; op_seed } ->
               let e = List.nth fleet.Fleet.entries graph in
               let n = Graph.n e.Fleet.graph in
               let s, t = Workload.st_pair ~n ~op_seed in
               Proto.Resistance { name = e.Fleet.name; eps = 1e-10; s; t }
           | Workload.Flow_op _ -> Alcotest.fail "no flows configured")
  in
  let run_at domains =
    Pool.set_default_domains domains;
    let cfg =
      {
        Daemon.default_config with
        Daemon.sched = { Sched.max_queue = 64; max_batch = 4; window = 2; coalesce = true };
      }
    in
    let d = Daemon.create cfg fleet in
    (* interleave admission and ticking the way the event loop does *)
    List.iteri
      (fun id req ->
        Daemon.handle d ~client:0 ~id req;
        if id mod 3 = 2 then ignore (Daemon.tick d : bool))
      reqs;
    Daemon.drain d;
    let out =
      String.concat "|"
        (List.map (fun (_, f) -> Bytes.to_string f) (Daemon.take_output d))
    in
    let acct =
      Lbcc_net.Rounds.breakdown (Daemon.accountant d)
      |> List.map (fun (l, r) -> Printf.sprintf "%s=%d" l r)
      |> String.concat ","
    in
    (out, acct, Daemon.served d)
  in
  let o1 = run_at 1 in
  let o2 = run_at 2 in
  let o4 = run_at 4 in
  Pool.set_default_domains 1;
  Alcotest.(check bool) "1 vs 2 domains identical" true (o1 = o2);
  Alcotest.(check bool) "1 vs 4 domains identical" true (o1 = o4)

(* Coalesced daemon responses must be bit-identical to direct in-process
   Prepared solves on the same fleet and seed. *)
let test_daemon_matches_direct () =
  let fleet = Lazy.force small_fleet in
  let d = Daemon.create Daemon.default_config fleet in
  let ops = [ (0, 11); (1, 21); (0, 31); (0, 41); (1, 51) ] in
  List.iteri
    (fun id (graph, op_seed) ->
      Daemon.handle d ~client:0 ~id (solve_req fleet ~graph ~op_seed))
    ops;
  Daemon.drain d;
  let outs = decode_outputs d in
  let ctx = Ctx.make ~seed:Daemon.default_config.Daemon.seed () in
  let handles =
    List.map
      (fun (e : Fleet.entry) -> Prepared.create ~ctx e.Fleet.graph)
      fleet.Fleet.entries
  in
  List.iteri
    (fun id (graph, op_seed) ->
      let e = List.nth fleet.Fleet.entries graph in
      let q =
        Prepared.solve ~eps:1e-8 (List.nth handles graph)
          ~b:(Workload.rhs ~n:(Graph.n e.Fleet.graph) ~op_seed)
      in
      let direct =
        Proto.Solution
          {
            solution = q.Prepared.solution;
            residual = q.Prepared.residual;
            iterations = q.Prepared.iterations;
            rounds = q.Prepared.rounds;
            bits = q.Prepared.bits;
          }
      in
      match List.assoc_opt id outs with
      | Some got ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d bit-identical to direct solve" id)
            true
            (Bytes.equal
               (Proto.encode_response ~id:0 got)
               (Proto.encode_response ~id:0 direct))
      | None -> Alcotest.fail (Printf.sprintf "no response for request %d" id))
    ops

let test_daemon_stats_shape () =
  let fleet = Lazy.force small_fleet in
  let d = Daemon.create Daemon.default_config fleet in
  feed_requests d (List.init 3 (fun i -> solve_req fleet ~graph:0 ~op_seed:(i + 1)));
  Daemon.drain d;
  ignore (Daemon.take_output d : (int * Bytes.t) list);
  let s = Lbcc_obs.Json.to_string (Daemon.stats_json d) in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "stats has %S" key)
        true
        (let pat = Printf.sprintf "%S:" key in
         let n = String.length s and m = String.length pat in
         let rec at i = i + m <= n && (String.sub s i m = pat || at (i + 1)) in
         at 0))
    [ "schema"; "served"; "admitted"; "rejected"; "batches"; "rounds"; "slo"; "cache" ]

(* ------------------------------------------------------------------ *)
(* Workload: seeded traces                                             *)

let test_workload_deterministic () =
  let cfg = { Workload.default_config with Workload.clients = 5; per_client = 7 } in
  Alcotest.(check bool) "same config, same trace" true
    (Workload.trace cfg = Workload.trace cfg);
  let other = Workload.trace { cfg with Workload.seed = 2 } in
  Alcotest.(check bool) "different seed, different trace" false
    (Workload.trace cfg = other)

let test_workload_zipf_shape () =
  let cdf = Workload.zipf_cdf ~s:1.0 ~n:4 in
  Alcotest.(check int) "cdf length" 4 (Array.length cdf);
  Alcotest.(check (float 1e-12)) "cdf ends at 1" 1.0 cdf.(3);
  (* zipf(1) over 4 ranks: rank 0 carries 1/(1+1/2+1/3+1/4) = 48% *)
  Alcotest.(check bool) "head heaviness" true (cdf.(0) > 0.44 && cdf.(0) < 0.52);
  let prng = Lbcc_util.Prng.create 5 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let r = Workload.sample_zipf prng cdf in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "rank 1 beats rank 3" true (counts.(1) > counts.(3))

let test_workload_rhs_zero_sum () =
  let b = Workload.rhs ~n:33 ~op_seed:17 in
  let sum = Array.fold_left ( +. ) 0.0 b in
  Alcotest.(check bool) "rhs is mean-centered" true (Float.abs sum < 1e-9);
  let s, t = Workload.st_pair ~n:33 ~op_seed:17 in
  Alcotest.(check bool) "s-t pair distinct and in range" true
    (s <> t && s >= 0 && s < 33 && t >= 0 && t < 33)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "serve-quantile",
      [
        Alcotest.test_case "endpoints exact" `Quick test_quantile_endpoints;
        Alcotest.test_case "constant collapses" `Quick test_quantile_constant;
        Alcotest.test_case "uniform within bucket error" `Quick
          test_quantile_uniform_bucket_error;
        Alcotest.test_case "bimodal separation" `Quick test_quantile_bimodal;
        Alcotest.test_case "monotone in q" `Quick test_quantile_monotone;
        Alcotest.test_case "errors and missing" `Quick test_quantile_errors;
      ] );
    ( "serve-proto",
      [
        Alcotest.test_case "request round-trip" `Quick test_proto_request_roundtrip;
        Alcotest.test_case "response round-trip" `Quick test_proto_response_roundtrip;
        Alcotest.test_case "float bit patterns" `Quick test_proto_float_bits_exact;
        Alcotest.test_case "malformed payloads" `Quick test_proto_malformed;
        Alcotest.test_case "chunked reader" `Quick test_proto_reader_chunked;
      ] );
    ( "serve-sched",
      [
        Alcotest.test_case "trace deterministic" `Quick test_sched_trace_deterministic;
        Alcotest.test_case "rejects exact tail" `Quick test_sched_rejects_exact_tail;
        Alcotest.test_case "admits after dispatch" `Quick test_sched_admits_after_dispatch;
        Alcotest.test_case "window prevents starvation" `Quick
          test_sched_window_prevents_starvation;
        Alcotest.test_case "serial mode" `Quick test_sched_serial_mode;
      ] );
    ( "serve-daemon",
      [
        Alcotest.test_case "drain answers everything" `Quick
          test_daemon_drain_answers_everything;
        Alcotest.test_case "rejects over-budget tail" `Quick
          test_daemon_rejects_over_budget_tail;
        Alcotest.test_case "bad requests" `Quick test_daemon_bad_requests;
        Alcotest.test_case "applies updates deterministically" `Quick
          test_daemon_update;
        Alcotest.test_case "rejects bad updates" `Quick test_daemon_update_bad;
        Alcotest.test_case "deterministic across domains" `Slow
          test_daemon_deterministic_across_domains;
        Alcotest.test_case "matches direct solves" `Slow test_daemon_matches_direct;
        Alcotest.test_case "stats shape" `Quick test_daemon_stats_shape;
      ] );
    ( "serve-workload",
      [
        Alcotest.test_case "trace deterministic" `Quick test_workload_deterministic;
        Alcotest.test_case "zipf shape" `Quick test_workload_zipf_shape;
        Alcotest.test_case "rhs zero-sum" `Quick test_workload_rhs_zero_sum;
      ] );
  ]
