(* Golden-fingerprint regression gate.

   test/fingerprints.expected pins the exact fingerprint (states, stats,
   accountant breakdowns) of every protocol in the shared table at the
   golden seeds.  Any engine, protocol or accounting change that moves a
   single bit fails here with the field-level diff visible in the message.

   Deliberate changes regenerate the file with `make fingerprints`, which
   refuses to run from a dirty tree so a new baseline is always its own
   reviewable commit. *)

module Fp = Lbcc_testfp.Fp

let expected_lines () =
  let ic = open_in "fingerprints.expected" in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (if String.trim line = "" then acc else line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_golden () =
  Lbcc_util.Pool.set_default_domains 1;
  let expected = expected_lines () in
  let got = Fp.golden_lines () in
  Alcotest.(check int)
    "golden line count (regenerate with `make fingerprints`)"
    (List.length expected) (List.length got);
  List.iter2
    (fun e g ->
      let key line =
        match String.split_on_char '\t' line with
        | name :: seed :: _ -> name ^ " seed=" ^ seed
        | _ -> line
      in
      Alcotest.(check string) (key e) e g)
    expected got

let suites =
  [
    ( "fingerprints",
      [ Alcotest.test_case "match golden file" `Quick test_golden ] );
  ]
