(* Fixture: lib/obs owns the clock, so wall-clock reads are in policy. *)

let now () = Unix.gettimeofday ()
