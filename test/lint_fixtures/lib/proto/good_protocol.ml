(* Fixture: a protocol module that follows every rule — seeded RNG, sorted
   table enumeration, accounted broadcasts under taxonomy labels, explicit
   comparators, and one justified waiver. *)

let draw prng = Lbcc_util.Prng.int prng 6

let keys tbl = Lbcc_util.Tbl.sorted_keys ~compare:Int.compare tbl

let union dst src =
  (* Set union is insensitive to enumeration order. *)
  (* lbcc-lint: allow det-unordered-hashtbl *)
  Hashtbl.iter (fun k () -> Hashtbl.replace dst k ()) src

let is_zero (x : float) = Float.equal x 0.0

let order xs = List.sort Float.compare xs

let accounted acc =
  Rounds.with_phase acc "solve" (fun () ->
      Rounds.charge acc ~label:"solve/residual-check" ~rounds:1)

let via_param ~accountant () =
  Rounds.charge_broadcast accountant ~label:"query/laplacian-matvec" ~bits:64
