(* Fixture: wall-clock reads in a protocol module. *)

let cpu () = Sys.time ()

let wall () = Unix.gettimeofday ()
