(* Fixture: broken suppression directives.
   lbcc-lint: pardon det-wall-clock
   lbcc-lint: allow no-such-rule *)

let fine = 1
