(* Fixture: a broadcast primitive with no accountant lexically in scope. *)

let leak t = Rounds.charge_broadcast t ~label:"leak" ~bits:1
