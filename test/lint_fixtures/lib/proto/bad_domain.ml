(* Fixture: raw domain spawn outside the worker pool. *)

let fire work = Domain.spawn (fun () -> work ())
