(* Fixture: accounted calls whose labels leave the documented taxonomy. *)

let f acc = Rounds.charge acc ~label:"bogus/thing" ~rounds:1

let g acc = Rounds.with_phase acc "warmup" (fun () -> ())

let h acc = Rounds.charge acc ~label:"Not_Kebab" ~rounds:1
