(* Fixture: hygiene violations — magic, unannotated ignore, bare assert. *)

let coerce x = Obj.magic x

let drop f x = ignore (f x)

let unreachable () = assert false
