(* Fixture: hash-bucket-order iteration in a protocol module. *)

let keys tbl =
  let acc = ref [] in
  Hashtbl.iter (fun k _ -> acc := k :: !acc) tbl;
  !acc

let sum tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
