(* Fixture: ambient Stdlib Random in a protocol module. *)

let roll () = Random.int 6

let seed_it () = Random.self_init ()
