(* Fixture: polymorphic comparison over float-carrying values. *)

let is_zero (x : float) = x = 0.0

let order xs = List.sort compare xs
