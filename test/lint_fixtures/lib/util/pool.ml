(* Fixture: lib/util/pool.ml is the one module allowed to spawn domains,
   and lib/util may touch Stdlib Random (it owns the seeding). *)

let lane work = Domain.spawn (fun () -> work ())

let entropy () = Random.bits ()
