(* Negative fixture for typ-par-race: the sanctioned shapes.  Writes into
   a shared buffer indexed by the chunk's own induction variable are
   disjoint per index; chunk-local refs are invisible outside the lane. *)

module Pool = struct
  let parallel_for _pool ~chunk:_ ~n:_ f = f 0 0
end

let results = Array.make 100 0

let fill () =
  Pool.parallel_for () ~chunk:16 ~n:100 (fun lo hi ->
      for i = lo to hi do
        results.(i) <- (2 * i)
      done)

let sum_local () =
  Pool.parallel_for () ~chunk:16 ~n:100 (fun lo hi ->
      let acc = ref 0 in
      for i = lo to hi do
        acc := !acc + i
      done;
      results.(lo) <- !acc)
