(* Positive fixture for typ-phase-flow: the broadcast primitive is one
   call away from the public surface ([Api.go] -> [Impl.helper] ->
   [Engine.run]) with no with_phase frame anywhere on the path — exactly
   what the lexical accountant-in-scope check cannot see.  A second
   finding comes from a resolved with_phase call whose label is outside
   the taxonomy. *)

module Rounds = struct
  type acc = { mutable rounds : int }

  let with_phase _acc _label f = f ()
  let charge acc ~rounds = acc.rounds <- acc.rounds + rounds
end

module Engine = struct
  let run acc = Rounds.charge acc ~rounds:1
end

module Impl = struct
  let helper acc = Engine.run acc
end

module Api = struct
  let go acc = Impl.helper acc
  let mislabeled acc = Rounds.with_phase acc "bogus-phase" (fun () -> ())
end
