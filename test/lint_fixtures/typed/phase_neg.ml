(* Negative fixture for typ-phase-flow: same call shape as the positive
   twin, but the public surface opens a taxonomy-labelled with_phase
   scope around the helper call, so every path from [Api.go] to the
   primitive crosses a phased edge. *)

module Rounds = struct
  type acc = { mutable rounds : int }

  let with_phase _acc _label f = f ()
  let charge acc ~rounds = acc.rounds <- acc.rounds + rounds
end

module Engine = struct
  let run acc = Rounds.charge acc ~rounds:1
end

module Impl = struct
  let helper acc = Engine.run acc
end

module Api = struct
  let go acc = Rounds.with_phase acc "query" (fun () -> Impl.helper acc)
end
