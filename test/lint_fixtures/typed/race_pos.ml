(* Positive fixture for typ-par-race: chunk bodies writing shared captured
   state.  Two shapes, each the classic lost-update bug that passes every
   single-domain test:

   - a captured ref accumulated from every lane;
   - a captured array cell at a chunk-independent index. *)

module Pool = struct
  let parallel_for _pool ~chunk:_ ~n:_ f = f 0 0
end

let total = ref 0

let sum () =
  Pool.parallel_for () ~chunk:16 ~n:100 (fun lo hi ->
      for i = lo to hi do
        total := !total + i
      done)

let cells = Array.make 4 0

let fill () = Pool.parallel_for () ~chunk:1 ~n:4 (fun _lo _hi -> cells.(0) <- 1)
