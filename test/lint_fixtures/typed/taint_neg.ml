(* Negative fixture for typ-det-taint: the same draw routed through a
   sanctioned door (the fixture config names [Taint_neg.Door] as one).
   Taint neither originates inside a door nor propagates through it. *)

module Door = struct
  let pick n = Random.int n
end

let helper n = Door.pick n

let run () = helper 32
