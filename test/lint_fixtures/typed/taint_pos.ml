(* Positive fixture for typ-det-taint: the ambient-Random draw is hidden
   behind a helper, invisible to the untyped rules' per-file scan once a
   module alias or a second file is involved; the typed pass follows the
   call edge from the public surface and reports the seed. *)

let helper n = Random.int n

let run () = helper 32
