(* Theorem-conformance sweeps: the paper's per-theorem guarantees checked
   over many seeded PRNG draws on several graph families, not just the
   single fixed instances the unit suites use.

   - Lemma 3.1: spanner stretch <= 2k-1 and |F+| = O(k n^{1+1/k});
   - Theorem 1.2: the sparsifier is a (1 +- eps) spectral approximation
     (certified against the exact eigenvalue bracket);
   - Theorem 1.3: the solver meets its requested residual eps.

   Sizes are kept small (n ~ 25) so the 20-seed x 3-family sweeps stay in
   unit-test territory; the bench harness covers the large-n behavior. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Paths = Lbcc_graph.Paths
module Vec = Lbcc_linalg.Vec
module Spanner = Lbcc_spanner.Spanner
module Sparsify = Lbcc_sparsifier.Sparsify
module Certify = Lbcc_sparsifier.Certify
module Solver = Lbcc_laplacian.Solver

let seeds = 20

let families =
  [
    ( "er",
      fun seed ->
        Gen.erdos_renyi_connected (Prng.create seed) ~n:26 ~p:0.3 ~w_max:6 );
    ("grid", fun seed -> Gen.grid (Prng.create seed) ~rows:5 ~cols:5 ~w_max:6);
    ( "geometric",
      fun seed ->
        Gen.random_geometric (Prng.create seed) ~n:26 ~radius:0.35 ~w_max:6 );
  ]

let sweep check =
  List.iter
    (fun (family, make) ->
      for seed = 1 to seeds do
        check ~family ~seed (make seed)
      done)
    families

let test_spanner_lemma_3_1 () =
  let k = 3 in
  sweep (fun ~family ~seed g ->
      let n = Graph.n g in
      let p = Array.make (Graph.m g) 1.0 in
      let r = Spanner.run ~prng:(Prng.create (1000 + seed)) ~graph:g ~p ~k () in
      let h = Graph.sub_edges g r.Spanner.fplus in
      let stretch = Paths.stretch g h in
      let ctx = Printf.sprintf "%s seed=%d" family seed in
      Alcotest.(check bool)
        (ctx ^ ": stretch <= 2k-1")
        true
        (stretch <= float_of_int ((2 * k) - 1) +. 1e-9);
      let nf = float_of_int n in
      let size_bound =
        float_of_int k *. (nf ** (1.0 +. (1.0 /. float_of_int k)))
      in
      Alcotest.(check bool)
        (ctx ^ ": |F+| <= k n^{1+1/k}")
        true
        (float_of_int (List.length r.Spanner.fplus) <= size_bound))

let test_sparsifier_theorem_1_2 () =
  let epsilon = 0.5 in
  sweep (fun ~family ~seed g ->
      let r =
        Sparsify.run
          ~prng:(Prng.create (2000 + seed))
          ~graph:g ~epsilon ~t:8 ~k:3 ()
      in
      let c = Certify.exact g r.Sparsify.sparsifier in
      Alcotest.(check bool)
        (Printf.sprintf "%s seed=%d: certified (1 +- %.1f)" family seed epsilon)
        true
        (c.Certify.epsilon_achieved <= epsilon +. 1e-9))

let test_solver_theorem_1_3 () =
  let eps = 1e-6 in
  sweep (fun ~family ~seed g ->
      let n = Graph.n g in
      let s =
        Solver.preprocess ~prng:(Prng.create (3000 + seed)) ~graph:g ~t:2 ~k:3 ()
      in
      let prng = Prng.create (4000 + seed) in
      let b = Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng)) in
      let r = Solver.solve s ~b ~eps in
      Alcotest.(check bool)
        (Printf.sprintf "%s seed=%d: residual %.2e <= eps" family seed
           r.Solver.residual)
        true
        (r.Solver.residual <= eps))

let suites =
  [
    ( "conformance",
      [
        Alcotest.test_case "Lemma 3.1: spanner stretch and size" `Slow
          test_spanner_lemma_3_1;
        Alcotest.test_case "Theorem 1.2: sparsifier (1 +- eps)" `Slow
          test_sparsifier_theorem_1_2;
        Alcotest.test_case "Theorem 1.3: solver residual" `Slow
          test_solver_theorem_1_3;
      ] );
  ]
