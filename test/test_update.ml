(* First-class graph mutation: Delta normalization, Graph.apply, the exact
   fingerprint patch algebra, incremental sketch updates, and patching
   prepared handles in the cache. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Vec = Lbcc_linalg.Vec
module Sparsify = Lbcc_sparsifier.Sparsify
module Certify = Lbcc_sparsifier.Certify
module Fingerprint = Lbcc_service.Fingerprint
module Prepared = Lbcc_service.Prepared
module Cache = Lbcc_service.Cache

let edge u v w = { Graph.u; v; w }

let test_graph seed =
  Gen.erdos_renyi_connected (Prng.create seed) ~n:24 ~p:0.3 ~w_max:8

(* ------------------------------------------------------------------ *)
(* Delta normal form                                                   *)

let test_delta_normal_form () =
  let d =
    Graph.Delta.of_ops
      [
        Graph.Delta.Insert (edge 5 2 1.0);
        Graph.Delta.Reweight (3, 4.0);
        Graph.Delta.Insert (edge 1 7 2.0);
        Graph.Delta.Delete 9;
        Graph.Delta.Reweight (3, 6.0);
      ]
  in
  let ins = Graph.Delta.inserts d in
  Alcotest.(check int) "two inserts" 2 (Array.length ins);
  Alcotest.(check bool)
    "inserts canonically oriented and sorted" true
    (ins.(0).Graph.u = 1 && ins.(0).Graph.v = 7 && ins.(1).Graph.u = 2
    && ins.(1).Graph.v = 5);
  Alcotest.(check bool)
    "last reweight wins" true
    (Graph.Delta.reweights d = [| (3, 6.0) |]);
  Alcotest.(check bool) "delete kept" true (Graph.Delta.deletes d = [| 9 |]);
  Alcotest.(check int) "size counts normalized ops" 4 (Graph.Delta.size d);
  Alcotest.(check int) "max_id" 9 (Graph.Delta.max_id d);
  (* Same mutation written in a different order normalizes identically. *)
  let d' =
    Graph.Delta.of_ops
      [
        Graph.Delta.Delete 9;
        Graph.Delta.Insert (edge 1 7 2.0);
        Graph.Delta.Reweight (3, 6.0);
        Graph.Delta.Insert (edge 2 5 1.0);
      ]
  in
  Alcotest.(check bool) "canonical form is order-independent" true (d = d')

let test_delta_last_op_wins_delete () =
  let d =
    Graph.Delta.of_ops
      [ Graph.Delta.Reweight (4, 2.0); Graph.Delta.Delete 4 ]
  in
  Alcotest.(check bool) "delete shadows reweight" true
    (Graph.Delta.deletes d = [| 4 |] && Graph.Delta.reweights d = [||])

let test_delta_rejects_invalid () =
  let raises ops =
    match Graph.Delta.of_ops ops with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "self-loop insert" true
    (raises [ Graph.Delta.Insert (edge 3 3 1.0) ]);
  Alcotest.(check bool) "non-positive weight" true
    (raises [ Graph.Delta.Insert (edge 0 1 0.0) ]);
  Alcotest.(check bool) "non-finite weight" true
    (raises [ Graph.Delta.Insert (edge 0 1 Float.nan) ]);
  Alcotest.(check bool) "negative edge id" true
    (raises [ Graph.Delta.Delete (-1) ]);
  Alcotest.(check bool) "empty is empty" true
    (Graph.Delta.is_empty Graph.Delta.empty)

(* ------------------------------------------------------------------ *)
(* Graph.apply                                                         *)

let test_apply_edge_accounting () =
  let g = test_graph 3 in
  let m = Graph.m g in
  let d =
    Graph.Delta.of_ops
      [
        Graph.Delta.Delete 0;
        Graph.Delta.Delete (m - 1);
        Graph.Delta.Reweight (1, 3.5);
        Graph.Delta.Insert (edge 0 23 2.0);
      ]
  in
  let g', remap = Graph.apply_mapped g d in
  Alcotest.(check int) "m' = m - deletes + inserts" (m - 1) (Graph.m g');
  Alcotest.(check int) "vertex set unchanged" (Graph.n g) (Graph.n g');
  Alcotest.(check int) "deleted head remaps to -1" (-1) remap.(0);
  Alcotest.(check int) "deleted tail remaps to -1" (-1) remap.(m - 1);
  (* Every survivor keeps its endpoints, with the reweight applied. *)
  Array.iteri
    (fun id post ->
      if post >= 0 then begin
        let e = Graph.edges g |> fun es -> es.(id) in
        let e' = (Graph.edges g').(post) in
        Alcotest.(check bool)
          (Printf.sprintf "edge %d endpoints survive" id)
          true
          (e.Graph.u = e'.Graph.u && e.Graph.v = e'.Graph.v);
        let expect_w = if id = 1 then 3.5 else e.Graph.w in
        Alcotest.(check (float 0.0))
          (Printf.sprintf "edge %d weight" id)
          expect_w e'.Graph.w
      end)
    remap;
  (* The insert lands after every survivor. *)
  let last = (Graph.edges g').(Graph.m g' - 1) in
  Alcotest.(check bool) "insert appended" true
    (last.Graph.u = 0 && last.Graph.v = 23 && last.Graph.w = 2.0)

let test_apply_rejects_out_of_range () =
  let g = test_graph 3 in
  let raises d =
    match Graph.apply g d with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "edge id >= m" true
    (raises (Graph.Delta.of_ops [ Graph.Delta.Delete (Graph.m g) ]));
  Alcotest.(check bool) "insert endpoint >= n" true
    (raises
       (Graph.Delta.of_ops [ Graph.Delta.Insert (edge 0 (Graph.n g) 1.0) ]))

let test_delta_touched_marks_neighborhoods () =
  let g = test_graph 4 in
  let e0 = (Graph.edges g).(0) in
  let d =
    Graph.Delta.of_ops
      [ Graph.Delta.Delete 0; Graph.Delta.Insert (edge 2 9 1.0) ]
  in
  let touched = Graph.delta_touched g d in
  Alcotest.(check bool) "deleted edge endpoints touched" true
    (touched.(e0.Graph.u) && touched.(e0.Graph.v));
  Alcotest.(check bool) "insert endpoints touched" true
    (touched.(2) && touched.(9));
  Alcotest.(check int) "nothing else touched"
    (List.sort_uniq Int.compare [ e0.Graph.u; e0.Graph.v; 2; 9 ] |> List.length)
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 touched)

(* ------------------------------------------------------------------ *)
(* Fingerprint patch algebra (qcheck)                                  *)

(* apply fp (delta g d) = graph (Graph.apply g d), exactly, under random
   delta streams — the invariant that lets the prepared cache re-key
   patched handles where create_cached will look. *)
let qcheck_fingerprint_patch_exact =
  QCheck.Test.make ~count:60 ~name:"fingerprint patch = recompute"
    QCheck.(pair small_nat (int_bound 3))
    (fun (seed, streak) ->
      let prng = Prng.create (1 + seed) in
      let g = ref (test_graph (7 + (seed mod 5))) in
      let fp = ref (Fingerprint.graph !g) in
      let ok = ref true in
      for _ = 0 to streak do
        let d =
          Gen.delta ~w_max:8 prng ~graph:!g ~inserts:3 ~deletes:2 ~reweights:2
            ()
        in
        fp := Fingerprint.apply !fp (Fingerprint.delta !g d);
        g := Graph.apply !g d;
        if not (Fingerprint.equal !fp (Fingerprint.graph !g)) then ok := false;
        if Fingerprint.to_hex !fp <> Fingerprint.to_hex (Fingerprint.graph !g)
        then ok := false
      done;
      !ok)

let qcheck_fingerprint_delta_bounds =
  QCheck.Test.make ~count:30 ~name:"fingerprint delta validates edge ids"
    QCheck.small_nat
    (fun seed ->
      let g = test_graph (3 + (seed mod 4)) in
      let d = Graph.Delta.of_ops [ Graph.Delta.Delete (Graph.m g + seed) ] in
      match Fingerprint.delta g d with
      | exception Invalid_argument _ -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Incremental sketches                                                *)

let delta_stream ~graph ~seed k =
  let prng = Prng.create seed in
  Gen.delta ~w_max:8 ~connected:true prng ~graph ~inserts:k ~deletes:(k / 2)
    ~reweights:(k / 2) ()

let sketch_render sk =
  Graph.edges sk.Sparsify.sparsifier
  |> Array.to_list
  |> List.map (fun (e : Graph.edge) ->
         Printf.sprintf "%d-%d-%Lx" e.Graph.u e.Graph.v
           (Int64.bits_of_float e.Graph.w))
  |> String.concat ";"

let run_sketch_stream () =
  let g = test_graph 11 in
  let prng = Prng.create 5 in
  let sk = ref (Sparsify.sketch ~prng ~graph:g ~epsilon:0.5 ()) in
  for step = 1 to 3 do
    let d = delta_stream ~graph:!sk.Sparsify.base ~seed:(40 + step) 4 in
    sk := Sparsify.update ~prng !sk d
  done;
  !sk

let test_sketch_update_deterministic_across_domains () =
  let renders =
    List.map
      (fun d ->
        Pool.set_default_domains d;
        sketch_render (run_sketch_stream ()))
      [ 1; 2; 4 ]
  in
  Pool.set_default_domains 1;
  match renders with
  | [ r1; r2; r4 ] ->
      Alcotest.(check string) "1 = 2 domains" r1 r2;
      Alcotest.(check string) "1 = 4 domains" r1 r4
  | _ -> assert false

let test_sketch_update_certifies () =
  let sk = run_sketch_stream () in
  Alcotest.(check int) "three generations" 3 sk.Sparsify.generation;
  let cert = Certify.exact sk.Sparsify.base sk.Sparsify.sparsifier in
  (* KPPS composition: each generation may compound the per-step 0.5. *)
  let budget = (1.5 ** 4.0) -. 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "eps %.3f within composed budget %.3f"
       cert.Certify.epsilon_achieved budget)
    true
    (cert.Certify.epsilon_achieved <= budget);
  Alcotest.(check bool) "base stays connected" true
    (Graph.is_connected sk.Sparsify.base)

let test_sketch_empty_delta_noop () =
  let g = test_graph 11 in
  let prng = Prng.create 5 in
  let sk = Sparsify.sketch ~prng ~graph:g ~epsilon:0.5 () in
  let sk' = Sparsify.update ~prng sk Graph.Delta.empty in
  Alcotest.(check int) "no rounds charged" 0 sk'.Sparsify.last_rounds;
  Alcotest.(check string) "sketch unchanged" (sketch_render sk)
    (sketch_render sk')

(* ------------------------------------------------------------------ *)
(* Prepared-handle patching                                            *)

let solutions_render qs =
  String.concat ";"
    (List.map
       (fun (q : Prepared.query_result) ->
         String.concat ","
           (List.map
              (fun f -> Printf.sprintf "%Lx" (Int64.bits_of_float f))
              (Array.to_list q.Prepared.solution)))
       qs)

let query_rhs n =
  let prng = Prng.create 77 in
  List.init 3 (fun _ ->
      Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian prng)))

let test_prepared_patch_rekeys_cache () =
  let g = test_graph 13 in
  let cache = Cache.create ~capacity:4 () in
  let h, hit0 = Prepared.create_cached ~cache ~seed:5 g in
  Alcotest.(check bool) "first create is a miss" false hit0;
  let d = delta_stream ~graph:g ~seed:91 4 in
  let h' = Prepared.update_cached ~cache h d in
  let g' = Graph.apply g d in
  Alcotest.(check bool) "patched handle serves the mutated graph" true
    (Fingerprint.equal (Prepared.fingerprint h') (Fingerprint.graph g'));
  Alcotest.(check int) "generation bumped" 1 (Prepared.generation h');
  (* Patch-in-place, not insert-alongside: the cache still holds exactly
     one entry for this lineage... *)
  let st = Cache.stats cache in
  Alcotest.(check int) "old key removed, new key added" 1 st.Cache.size;
  (* ...and a fresh prepare of the mutated graph finds the patched handle
     (same key create_cached builds), rather than rebuilding cold. *)
  let h'', hit = Prepared.create_cached ~cache ~seed:5 g' in
  Alcotest.(check bool) "re-prepare of mutated graph hits" true hit;
  Alcotest.(check int) "the hit IS the patched handle" 1
    (Prepared.generation h'');
  (* The pre-mutation key is dead: preparing the old graph misses. *)
  let _, old_hit = Prepared.create_cached ~cache ~seed:5 g in
  Alcotest.(check bool) "old graph key is gone" false old_hit

(* Patch-vs-invalidate equivalence: a patched handle answers queries with
   the accuracy contract of a cold rebuild, deterministically at every
   domain count.  (The sketches differ by construction — incremental
   pass-through vs full re-sample — so equivalence is the solver contract,
   not bit-equality between the two handles.) *)
let test_prepared_patch_vs_invalidate () =
  let g = test_graph 13 in
  let d = delta_stream ~graph:g ~seed:91 4 in
  let g' = Graph.apply g d in
  let n = Graph.n g' in
  let eps = 1e-8 in
  let run_patched d_count =
    Pool.set_default_domains d_count;
    let cache = Cache.create ~capacity:4 () in
    let h, _ = Prepared.create_cached ~cache ~seed:5 g in
    let h' = Prepared.update_cached ~cache h d in
    let qs = Prepared.solve_many ~eps h' (query_rhs n) in
    (solutions_render qs, qs)
  in
  let r1, qs1 = run_patched 1 in
  let r2, _ = run_patched 2 in
  let r4, _ = run_patched 4 in
  Pool.set_default_domains 1;
  Alcotest.(check string) "patched solutions identical at 1/2 domains" r1 r2;
  Alcotest.(check string) "patched solutions identical at 1/4 domains" r1 r4;
  (* The invalidate path: throw the handle away, rebuild cold on g'. *)
  let cold = Prepared.create ~seed:5 g' in
  let qs_cold = Prepared.solve_many ~eps cold (query_rhs n) in
  List.iter2
    (fun (a : Prepared.query_result) (b : Prepared.query_result) ->
      Alcotest.(check bool)
        (Printf.sprintf "residuals within contract (%.2e vs %.2e)" a.residual
           b.residual)
        true
        (a.Prepared.residual < 1e-6 && b.Prepared.residual < 1e-6))
    qs1 qs_cold;
  (* Both paths charge prepare-phase rounds; the patch pays fewer. *)
  Alcotest.(check bool) "update rounds < cold rebuild rounds" true
    (let cache = Cache.create ~capacity:4 () in
     let h, _ = Prepared.create_cached ~cache ~seed:5 g in
     let h' = Prepared.update_cached ~cache h d in
     Prepared.preprocessing_rounds h' < Prepared.preprocessing_rounds cold)

let suites =
  [
    ( "update.delta",
      [
        Alcotest.test_case "normal form" `Quick test_delta_normal_form;
        Alcotest.test_case "last op wins" `Quick test_delta_last_op_wins_delete;
        Alcotest.test_case "rejects invalid" `Quick test_delta_rejects_invalid;
      ] );
    ( "update.apply",
      [
        Alcotest.test_case "edge accounting" `Quick test_apply_edge_accounting;
        Alcotest.test_case "out of range" `Quick test_apply_rejects_out_of_range;
        Alcotest.test_case "touched neighborhoods" `Quick
          test_delta_touched_marks_neighborhoods;
      ] );
    ( "update.fingerprint",
      [
        QCheck_alcotest.to_alcotest qcheck_fingerprint_patch_exact;
        QCheck_alcotest.to_alcotest qcheck_fingerprint_delta_bounds;
      ] );
    ( "update.sketch",
      [
        Alcotest.test_case "deterministic across domains" `Quick
          test_sketch_update_deterministic_across_domains;
        Alcotest.test_case "certifies" `Quick test_sketch_update_certifies;
        Alcotest.test_case "empty delta no-op" `Quick
          test_sketch_empty_delta_noop;
      ] );
    ( "update.prepared",
      [
        Alcotest.test_case "patch re-keys cache" `Quick
          test_prepared_patch_rekeys_cache;
        Alcotest.test_case "patch vs invalidate" `Quick
          test_prepared_patch_vs_invalidate;
      ] );
  ]
