(* Sequential vs. parallel determinism of the execution layer.

   Every protocol below is run once on a single-lane pool (fully
   sequential) and replayed on 2- and 4-lane pools, with and without fault
   injection, across >= 10 seeds.  The fingerprints — final states, engine
   stats, and the accountant's hierarchical breakdowns — must match
   bit-for-bit: the multicore layer is a wall-clock knob only. *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Model = Lbcc_net.Model
module Rounds = Lbcc_net.Rounds
module Fault = Lbcc_net.Fault
module Bfs = Lbcc_dist.Bfs
module Sssp = Lbcc_dist.Sssp
module Leader = Lbcc_dist.Leader
module Sparsify = Lbcc_sparsifier.Sparsify

let seeds = List.init 10 (fun i -> i + 1)
let parallel_sizes = [ 2; 4 ]

let graph_of seed =
  Gen.erdos_renyi_connected (Prng.create seed) ~n:40 ~p:0.15 ~w_max:8

let faults_of seed =
  Fault.create ~seed
    (Fault.spec ~drop_prob:0.15 ~duplicate_prob:0.1
       ~crashes:[ (1, 3) ] ~adversarial_drops:2 ())

(* Exact fingerprints: ints verbatim, floats by their bit pattern. *)
let ints a = String.concat "," (List.map string_of_int (Array.to_list a))

let floats a =
  String.concat ","
    (List.map
       (fun f -> Printf.sprintf "%Lx" (Int64.bits_of_float f))
       (Array.to_list a))

let acct_fp acc =
  let flat kvs =
    String.concat ";" (List.map (fun (l, r) -> Printf.sprintf "%s=%d" l r) kvs)
  in
  flat (Rounds.breakdown acc) ^ "|" ^ flat (Rounds.bits_breakdown acc)

let with_acct f =
  let acc = Rounds.create ~bandwidth:16 in
  let fp = f acc in
  fp ^ "|" ^ acct_fp acc

(* protocol name, fingerprint of one full run (fresh accountant and fault
   plan per run: fault plans are stateful). *)
let protocols =
  [
    ( "bfs clique",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Bfs.run ~accountant:acc ~model:Model.broadcast_congested_clique
                ~graph:(graph_of seed) ~source:0 ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged)
    );
    ( "bfs faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Bfs.run ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged)
    );
    ( "sssp",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Sssp.run ~accountant:acc ~model:Model.broadcast_congest
                ~graph:(graph_of seed) ~source:0 ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (floats r.Sssp.dist)
              (ints r.Sssp.parent) r.Sssp.rounds r.Sssp.supersteps
              r.Sssp.converged) );
    ( "sssp faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Sssp.run ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (floats r.Sssp.dist)
              (ints r.Sssp.parent) r.Sssp.rounds r.Sssp.supersteps
              r.Sssp.converged) );
    ( "leader",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Leader.run ~accountant:acc ~model:Model.broadcast_congest
                ~graph:(graph_of seed) ()
            in
            Printf.sprintf "%d|%d|%d|%b" r.Leader.leader r.Leader.rounds
              r.Leader.supersteps r.Leader.converged) );
    ( "reliable bfs faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Bfs.run_reliable ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged)
    );
    ( "reliable sssp faulty",
      fun seed ->
        with_acct (fun acc ->
            let r =
              Sssp.run_reliable ~accountant:acc ~faults:(faults_of seed)
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ~source:0
                ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b" (floats r.Sssp.dist)
              (ints r.Sssp.parent) r.Sssp.rounds r.Sssp.supersteps
              r.Sssp.converged) );
    ( "reliable leader crash+dup",
      (* Combined crash-stop and duplication schedule: the ack/retransmit
         layer has to suspect the crashed vertex and dedupe the copies in
         the same run. *)
      fun seed ->
        with_acct (fun acc ->
            let faults =
              Fault.create ~seed
                (Fault.spec ~drop_prob:0.1 ~duplicate_prob:0.25
                   ~crashes:[ (2, 4); (5, 2) ] ())
            in
            let r =
              Leader.run_reliable ~accountant:acc ~faults
                ~model:Model.broadcast_congest ~graph:(graph_of seed) ()
            in
            Printf.sprintf "%d|%d|%d|%b" r.Leader.leader r.Leader.rounds
              r.Leader.supersteps r.Leader.converged) );
    ( "byzantine bfs equivocating",
      fun seed ->
        with_acct (fun acc ->
            let g = graph_of seed in
            let faults =
              Fault.create ~seed
                (Fault.spec
                   ~byzantine:
                     (List.init (Fault.max_tolerated ~n:(Graph.n g)) Fun.id)
                   ~byz_prob:0.15 ())
            in
            let r, d =
              Bfs.run_byzantine ~accountant:acc ~faults
                ~model:Model.broadcast_congested_clique ~graph:g ~source:0 ()
            in
            Printf.sprintf "%s|%s|%d|%d|%b|%d|%d|%d" (ints r.Bfs.dist)
              (ints r.Bfs.parent) r.Bfs.rounds r.Bfs.supersteps r.Bfs.converged
              d.Lbcc_net.Byzantine.Diag.echo_rounds
              d.Lbcc_net.Byzantine.Diag.repairs_served
              d.Lbcc_net.Byzantine.Diag.quorum_failures) );
    ( "sparsifier",
      fun seed ->
        with_acct (fun acc ->
            let g = Gen.erdos_renyi_connected (Prng.create seed) ~n:24 ~p:0.3 ~w_max:8 in
            let r =
              Sparsify.run ~accountant:acc ~prng:(Prng.create (seed + 100))
                ~graph:g ~epsilon:0.5 ()
            in
            let h = r.Sparsify.sparsifier in
            let edges =
              Array.to_list (Graph.edges h)
              |> List.map (fun (e : Graph.edge) ->
                     Printf.sprintf "%d-%d:%Lx" e.Graph.u e.Graph.v
                       (Int64.bits_of_float e.Graph.w))
            in
            Printf.sprintf "%s|%s|%d|%d" (String.concat "," edges)
              (ints (Sparsify.out_degrees r))
              r.Sparsify.rounds r.Sparsify.final_sampled) );
  ]

let run_protocol f seed = f seed

let test_protocol (name, f) () =
  Pool.set_default_domains 1;
  let baselines = List.map (fun s -> (s, run_protocol f s)) seeds in
  List.iter
    (fun d ->
      Pool.set_default_domains d;
      List.iter
        (fun (s, expected) ->
          let got = run_protocol f s in
          Alcotest.(check string)
            (Printf.sprintf "%s seed=%d domains=%d" name s d)
            expected got)
        baselines)
    parallel_sizes;
  Pool.set_default_domains 1

let test_pool_parallel_for () =
  List.iter
    (fun d ->
      Pool.set_default_domains d;
      let n = 1000 in
      let out = Array.make n 0 in
      Pool.parallel_for (Pool.default ()) ~chunk:7 ~n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- i * i
          done);
      for i = 0 to n - 1 do
        if out.(i) <> i * i then
          Alcotest.failf "parallel_for domains=%d: slot %d" d i
      done)
    [ 1; 2; 4 ];
  Pool.set_default_domains 1

let test_pool_reduce_deterministic () =
  (* Floating-point chunk sums must combine identically at every size. *)
  let n = 10_000 in
  let xs = Array.init n (fun i -> sin (float_of_int i) *. 1e3) in
  let sum_at d =
    Pool.set_default_domains d;
    Pool.parallel_reduce (Pool.default ()) ~n ~init:0.0
      ~map:(fun lo hi ->
        let acc = ref 0.0 in
        for i = lo to hi - 1 do
          acc := !acc +. xs.(i)
        done;
        !acc)
      ~combine:( +. ) ()
  in
  let s1 = sum_at 1 and s2 = sum_at 2 and s4 = sum_at 4 in
  Pool.set_default_domains 1;
  Alcotest.(check bool)
    "reduce identical 1 vs 2" true
    (Int64.bits_of_float s1 = Int64.bits_of_float s2);
  Alcotest.(check bool)
    "reduce identical 1 vs 4" true
    (Int64.bits_of_float s1 = Int64.bits_of_float s4)

let test_pool_exceptions () =
  Pool.set_default_domains 4;
  (try
     Pool.parallel_for (Pool.default ()) ~chunk:1 ~n:64 (fun lo _ ->
         if lo = 13 then failwith "boom");
     Alcotest.fail "expected exception"
   with Failure m -> Alcotest.(check string) "propagated" "boom" m);
  (* The pool must be reusable after a failed run. *)
  let hit = Array.make 64 false in
  Pool.parallel_for (Pool.default ()) ~chunk:1 ~n:64 (fun lo hi ->
      for i = lo to hi - 1 do
        hit.(i) <- true
      done);
  Alcotest.(check bool) "reusable" true (Array.for_all Fun.id hit);
  Pool.set_default_domains 1

let test_pool_nested () =
  Pool.set_default_domains 4;
  let out = Array.make 100 0 in
  Pool.parallel_for (Pool.default ()) ~chunk:10 ~n:100 (fun lo hi ->
      (* Nested call on the busy pool: must run inline, not deadlock. *)
      Pool.parallel_for (Pool.default ()) ~chunk:1 ~n:(hi - lo) (fun l h ->
          for i = l to h - 1 do
            out.(lo + i) <- lo + i
          done));
  for i = 0 to 99 do
    if out.(i) <> i then Alcotest.failf "nested: slot %d" i
  done;
  Pool.set_default_domains 1

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "parallel_for covers" `Quick test_pool_parallel_for;
        Alcotest.test_case "reduce bit-identical" `Quick
          test_pool_reduce_deterministic;
        Alcotest.test_case "exception propagation" `Quick test_pool_exceptions;
        Alcotest.test_case "nested runs inline" `Quick test_pool_nested;
      ] );
    ( "determinism",
      List.map
        (fun (name, f) ->
          Alcotest.test_case (name ^ " 1=2=4 domains") `Quick
            (test_protocol (name, f)))
        protocols );
  ]
