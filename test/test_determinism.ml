(* Sequential vs. parallel determinism of the execution layer.

   Every protocol in the shared fingerprint table (test/fp/fp.ml) is run
   once on a single-lane pool (fully sequential) and replayed on 2- and
   4-lane pools, with and without fault injection, across >= 10 seeds.
   The fingerprints — final states, engine stats, and the accountant's
   hierarchical breakdowns — must match bit-for-bit: the multicore layer
   is a wall-clock knob only.  (The boxed-vs-flat engine axis of the same
   table lives in test_engine_diff.ml.) *)

open Lbcc_util
module Fp = Lbcc_testfp.Fp

let test_protocol (name, f) () =
  Pool.set_default_domains 1;
  let baselines = List.map (fun s -> (s, f s)) Fp.seeds in
  List.iter
    (fun d ->
      Pool.set_default_domains d;
      List.iter
        (fun (s, expected) ->
          let got = f s in
          Alcotest.(check string)
            (Printf.sprintf "%s seed=%d domains=%d" name s d)
            expected got)
        baselines)
    [ 2; 4 ];
  Pool.set_default_domains 1

let test_pool_parallel_for () =
  List.iter
    (fun d ->
      Pool.set_default_domains d;
      let n = 1000 in
      let out = Array.make n 0 in
      Pool.parallel_for (Pool.default ()) ~chunk:7 ~n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- i * i
          done);
      for i = 0 to n - 1 do
        if out.(i) <> i * i then
          Alcotest.failf "parallel_for domains=%d: slot %d" d i
      done)
    [ 1; 2; 4 ];
  Pool.set_default_domains 1

let test_pool_reduce_deterministic () =
  (* Floating-point chunk sums must combine identically at every size. *)
  let n = 10_000 in
  let xs = Array.init n (fun i -> sin (float_of_int i) *. 1e3) in
  let sum_at d =
    Pool.set_default_domains d;
    Pool.parallel_reduce (Pool.default ()) ~n ~init:0.0
      ~map:(fun lo hi ->
        let acc = ref 0.0 in
        for i = lo to hi - 1 do
          acc := !acc +. xs.(i)
        done;
        !acc)
      ~combine:( +. ) ()
  in
  let s1 = sum_at 1 and s2 = sum_at 2 and s4 = sum_at 4 in
  Pool.set_default_domains 1;
  Alcotest.(check bool)
    "reduce identical 1 vs 2" true
    (Int64.bits_of_float s1 = Int64.bits_of_float s2);
  Alcotest.(check bool)
    "reduce identical 1 vs 4" true
    (Int64.bits_of_float s1 = Int64.bits_of_float s4)

let test_pool_exceptions () =
  Pool.set_default_domains 4;
  (try
     Pool.parallel_for (Pool.default ()) ~chunk:1 ~n:64 (fun lo _ ->
         if lo = 13 then failwith "boom");
     Alcotest.fail "expected exception"
   with Failure m -> Alcotest.(check string) "propagated" "boom" m);
  (* The pool must be reusable after a failed run. *)
  let hit = Array.make 64 false in
  Pool.parallel_for (Pool.default ()) ~chunk:1 ~n:64 (fun lo hi ->
      for i = lo to hi - 1 do
        hit.(i) <- true
      done);
  Alcotest.(check bool) "reusable" true (Array.for_all Fun.id hit);
  Pool.set_default_domains 1

let test_pool_nested () =
  Pool.set_default_domains 4;
  let out = Array.make 100 0 in
  Pool.parallel_for (Pool.default ()) ~chunk:10 ~n:100 (fun lo hi ->
      (* Nested call on the busy pool: must run inline, not deadlock. *)
      Pool.parallel_for (Pool.default ()) ~chunk:1 ~n:(hi - lo) (fun l h ->
          for i = l to h - 1 do
            out.(lo + i) <- lo + i
          done));
  for i = 0 to 99 do
    if out.(i) <> i then Alcotest.failf "nested: slot %d" i
  done;
  Pool.set_default_domains 1

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "parallel_for covers" `Quick test_pool_parallel_for;
        Alcotest.test_case "reduce bit-identical" `Quick
          test_pool_reduce_deterministic;
        Alcotest.test_case "exception propagation" `Quick test_pool_exceptions;
        Alcotest.test_case "nested runs inline" `Quick test_pool_nested;
      ] );
    ( "determinism",
      List.map
        (fun (name, f) ->
          Alcotest.test_case (name ^ " 1=2=4 domains") `Quick
            (test_protocol (name, f)))
        Fp.protocols );
  ]
