(* lbcc-serve: the coalescing solver daemon and its load generator.

     lbcc-serve serve  --socket /tmp/lbcc.sock --graphs 4 --vertices 48
     lbcc-serve client --socket /tmp/lbcc.sock info
     lbcc-serve client --socket /tmp/lbcc.sock solve --graph g0 --rhs-seed 7
     lbcc-serve bench  --out _bench_reports

   The bench forks daemon children (before the parent ever spawns worker
   domains — forking a multi-domain OCaml 5 process is not safe), replays a
   seeded zipf trace over concurrent closed-loop clients against a
   coalescing daemon and a serial-dispatch baseline, checks every daemon
   response bit-for-bit against direct in-process solves, overloads a
   small-queue daemon at 2x its admission budget, and writes the SERVE
   report (lbcc-bench/1 claims).

   Exit contract (DESIGN.md §11): 0 success; 1 an SLO claim in the bench
   report fell outside its bound; 2 usage; 3 internal error or timeout. *)

open Cmdliner
module Graph = Lbcc_graph.Graph
module Vec = Lbcc_linalg.Vec
module Json = Lbcc_obs.Json
module Report = Lbcc_obs.Report
module Clock = Lbcc_obs.Clock
module Ctx = Lbcc_service.Ctx
module Prepared = Lbcc_service.Prepared
module Lbcc = Lbcc_core.Lbcc
module Prng = Lbcc_util.Prng
module Proto = Lbcc_serve.Proto
module Sched = Lbcc_serve.Sched
module Fleet = Lbcc_serve.Fleet
module Workload = Lbcc_serve.Workload
module Daemon = Lbcc_serve.Daemon
module Server = Lbcc_serve.Server

let solve_eps = 1e-8
let resist_eps = 1e-10

(* ------------------------------------------------------------------ *)
(* Small client plumbing                                               *)

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd buf !off (len - !off)
  done

type conn = { fd : Unix.file_descr; reader : Proto.Reader.t }

let conn_open endpoint = { fd = Server.connect endpoint; reader = Proto.Reader.create () }
let conn_close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* One blocking request/response exchange on a connection. *)
let rpc c ~id req =
  write_all c.fd (Proto.encode_request ~id req);
  let scratch = Bytes.create 65536 in
  let rec loop () =
    match Proto.Reader.next c.reader with
    | Some payload -> Proto.decode_response payload
    | None ->
        let k = Unix.read c.fd scratch 0 (Bytes.length scratch) in
        if k = 0 then failwith "lbcc-serve: connection closed by daemon";
        Proto.Reader.feed c.reader scratch k;
        loop ()
  in
  loop ()

(* Crude field extraction from the daemon's compact JSON replies — enough
   for the handful of integer counters the bench needs, without growing a
   JSON parser. *)
let substr_index s pat =
  let n = String.length s and m = String.length pat in
  let rec at i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else at (i + 1)
  in
  if m = 0 then None else at 0

let json_int s key =
  match substr_index s (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i -> (
      let j = i + String.length key + 3 in
      let stop = ref j in
      let n = String.length s in
      if !stop < n && s.[!stop] = '-' then incr stop;
      while
        !stop < n && (match s.[!stop] with '0' .. '9' -> true | _ -> false)
      do
        incr stop
      done;
      match int_of_string_opt (String.sub s j (!stop - j)) with
      | Some v -> Some v
      | None -> None)

let json_int_exn s key =
  match json_int s key with
  | Some v -> v
  | None -> failwith (Printf.sprintf "lbcc-serve: no %S field in reply" key)

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let endpoint_conv =
  let parse s =
    match String.index_opt s ':' with
    | None -> Ok (Server.Unix_sock s)
    | Some _ -> (
        match String.split_on_char ':' s with
        | [ "unix"; path ] -> Ok (Server.Unix_sock path)
        | [ "tcp"; host; port ] -> (
            match int_of_string_opt port with
            | Some p when p > 0 && p < 65536 -> Ok (Server.Tcp (host, p))
            | _ -> Error (`Msg ("bad port in " ^ s)))
        | _ -> Error (`Msg ("bad endpoint " ^ s ^ " (PATH, unix:PATH or tcp:HOST:PORT)")))
  in
  Arg.conv (parse, fun ppf e -> Format.pp_print_string ppf (Server.endpoint_to_string e))

let socket_arg =
  Arg.(
    value
    & opt endpoint_conv (Server.Unix_sock "/tmp/lbcc-serve.sock")
    & info [ "socket" ] ~docv:"ENDPOINT"
        ~doc:
          "Daemon endpoint: a Unix socket $(b,PATH) (or $(b,unix:PATH)), or \
           $(b,tcp:HOST:PORT) with a numeric host.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Fleet and solver seed.")

let graphs_arg =
  Arg.(value & opt int 4 & info [ "graphs" ] ~docv:"G" ~doc:"Fleet size (graphs g0..).")

let vertices_arg =
  Arg.(value & opt int 48 & info [ "vertices" ] ~docv:"N" ~doc:"Vertices per fleet graph.")

let family_arg =
  let family_conv =
    Arg.conv
      ( (fun s ->
          match Fleet.family_of_string s with
          | Some f -> Ok f
          | None -> Error (`Msg ("unknown family " ^ s))),
        fun ppf f -> Format.pp_print_string ppf (Fleet.family_to_string f) )
  in
  Arg.(
    value & opt family_conv Fleet.Er
    & info [ "family" ] ~docv:"FAMILY" ~doc:"Graph family: er, grid, geometric, complete.")

let networks_arg =
  Arg.(
    value & opt int 0
    & info [ "networks" ] ~docv:"F" ~doc:"Flow networks in the fleet (f0..).")

let net_vertices_arg =
  Arg.(value & opt int 8 & info [ "net-vertices" ] ~docv:"N" ~doc:"Vertices per flow network.")

let fleet_term =
  let make seed graphs vertices family networks net_vertices =
    {
      Fleet.seed;
      graphs;
      vertices;
      family;
      w_max = 8;
      networks;
      net_vertices;
    }
  in
  Term.(
    const make $ seed_arg $ graphs_arg $ vertices_arg $ family_arg
    $ networks_arg $ net_vertices_arg)

let max_queue_arg =
  Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"Q" ~doc:"Admission bound.")

let max_batch_arg =
  Arg.(value & opt int 16 & info [ "max-batch" ] ~docv:"B" ~doc:"Coalescing cap per batch.")

let window_arg =
  Arg.(
    value & opt int 4
    & info [ "window" ] ~docv:"W"
        ~doc:"Batching window in completed batches (0 dispatches immediately).")

let serial_arg =
  Arg.(
    value & flag
    & info [ "serial" ] ~doc:"Disable coalescing: one request per batch (baseline mode).")

let cache_arg =
  Arg.(
    value & opt int 8
    & info [ "cache-capacity" ] ~docv:"C"
        ~doc:"Prepared-handle cache capacity (0: re-prepare on every batch).")

let no_warm_arg =
  Arg.(
    value & flag
    & info [ "no-warm" ] ~doc:"Skip preparing the fleet at startup.")

let daemon_cfg_term =
  let make fleet_seed max_queue max_batch window serial cache_capacity no_warm =
    {
      Daemon.sched = { Sched.max_queue; max_batch; window; coalesce = not serial };
      seed = fleet_seed;
      cache_capacity;
      prepare_on_load = not no_warm;
    }
  in
  Term.(
    const make $ seed_arg $ max_queue_arg $ max_batch_arg $ window_arg
    $ serial_arg $ cache_arg $ no_warm_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let run_serve endpoint fleet_cfg daemon_cfg stats_out =
  let fleet = Fleet.build fleet_cfg in
  let daemon = Daemon.create daemon_cfg fleet in
  let listen_fd = Server.bind_listen endpoint in
  Printf.printf "lbcc-serve: listening on %s (%d graphs, %d networks, %s)\n%!"
    (Server.endpoint_to_string endpoint)
    (List.length fleet.Fleet.entries)
    (List.length fleet.Fleet.nets)
    (if daemon_cfg.Daemon.sched.Sched.coalesce then "coalescing" else "serial");
  Server.run daemon listen_fd;
  let stats = Json.to_string ~pretty:true (Daemon.stats_json daemon) in
  (match stats_out with
  | Some path ->
      let oc = open_out path in
      output_string oc stats;
      output_char oc '\n';
      close_out oc;
      Printf.printf "lbcc-serve: drained (%d served); stats -> %s\n%!"
        (Daemon.served daemon) path
  | None ->
      Printf.printf "lbcc-serve: drained (%d served)\n%s\n%!"
        (Daemon.served daemon) stats);
  `Ok ()

let serve_cmd =
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:"Write the final stats snapshot to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the coalescing solver daemon until SIGTERM/SIGINT.")
    Term.(
      ret (const run_serve $ socket_arg $ fleet_term $ daemon_cfg_term $ stats_out))

(* ------------------------------------------------------------------ *)
(* client                                                              *)

let describe_response = function
  | Proto.Solution { solution; residual; iterations; rounds; bits } ->
      Printf.printf
        "solution: n=%d residual=%.3e iterations=%d rounds=%d bits=%d\n"
        (Array.length solution) residual iterations rounds bits;
      `Ok ()
  | Proto.Resistance_r { resistance; rounds; bits } ->
      Printf.printf "resistance: %.12g (rounds=%d bits=%d)\n" resistance rounds
        bits;
      `Ok ()
  | Proto.Flow_r { flow; value; cost; rounds; bits } ->
      Printf.printf "flow: edges=%d value=%d cost=%d rounds=%d bits=%d\n"
        (Array.length flow) value cost rounds bits;
      `Ok ()
  | Proto.Update_r { n; m; fingerprint; rounds; bits } ->
      Printf.printf "updated: n=%d m=%d fingerprint=%s rounds=%d bits=%d\n" n m
        fingerprint rounds bits;
      `Ok ()
  | Proto.Json_r body ->
      print_string body;
      print_newline ();
      `Ok ()
  | Proto.Ok_r ->
      print_endline "ok";
      `Ok ()
  | Proto.Error_r { code; message } ->
      Printf.eprintf "lbcc-serve: daemon error (%s): %s\n"
        (match code with
        | Proto.Overloaded -> "overloaded"
        | Proto.Bad_request -> "bad-request"
        | Proto.Internal -> "internal")
        message;
      Stdlib.exit (match code with Proto.Bad_request -> 2 | _ -> 3)

let graph_field_from_info info name key =
  (* the info JSON lists {"name":"g0","n":48,"m":...} per graph *)
  match substr_index info (Printf.sprintf "\"name\":%S" name) with
  | None ->
      Printf.eprintf "lbcc-serve: daemon has no graph %S\n" name;
      Stdlib.exit 2
  | Some i -> json_int_exn (String.sub info i (String.length info - i)) key

let graph_n_from_info info name = graph_field_from_info info name "n"

(* Delta-op parsers for the client's explicit flags. *)
let parse_insert s =
  match String.split_on_char ':' s with
  | [ u; v; w ] -> (
      match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt w)
      with
      | Some u, Some v, Some w -> Graph.Delta.Insert { Graph.u; v; w }
      | _ -> failwith ("lbcc-serve: bad --insert " ^ s ^ " (want U:V:W)"))
  | _ -> failwith ("lbcc-serve: bad --insert " ^ s ^ " (want U:V:W)")

let parse_reweight s =
  match String.split_on_char ':' s with
  | [ id; w ] -> (
      match (int_of_string_opt id, float_of_string_opt w) with
      | Some id, Some w -> Graph.Delta.Reweight (id, w)
      | _ -> failwith ("lbcc-serve: bad --reweight " ^ s ^ " (want ID:W)"))
  | _ -> failwith ("lbcc-serve: bad --reweight " ^ s ^ " (want ID:W)")

(* Seeded random ops against a graph known only by its (n, m) from Info:
   mostly inserts and reweights, deletes kept rare so a random stream is
   unlikely to disconnect a sparse fleet graph. *)
let random_ops ~seed ~n ~m k =
  let prng = Prng.create seed in
  List.init k (fun _ ->
      match Prng.int prng 4 with
      | 0 | 1 ->
          let u = Prng.int prng n in
          let v =
            let v = Prng.int prng (n - 1) in
            if v >= u then v + 1 else v
          in
          Graph.Delta.Insert { Graph.u; v; w = float_of_int (1 + Prng.int prng 8) }
      | 2 when m > 0 ->
          Graph.Delta.Reweight (Prng.int prng m, float_of_int (1 + Prng.int prng 8))
      | _ when m > 0 -> Graph.Delta.Delete (Prng.int prng m)
      | _ ->
          let u = Prng.int prng n in
          let v =
            let v = Prng.int prng (n - 1) in
            if v >= u then v + 1 else v
          in
          Graph.Delta.Insert { Graph.u; v; w = float_of_int (1 + Prng.int prng 8) })

let run_client endpoint op graph net rhs_seed eps s t inserts deletes reweights
    random =
  let c = conn_open endpoint in
  Fun.protect
    ~finally:(fun () -> conn_close c)
    (fun () ->
      match op with
      | "stats" -> describe_response (snd (rpc c ~id:1 Proto.Stats))
      | "info" -> describe_response (snd (rpc c ~id:1 Proto.Info))
      | "shutdown" -> describe_response (snd (rpc c ~id:1 Proto.Shutdown))
      | "solve" ->
          let n =
            match rpc c ~id:1 Proto.Info with
            | _, Proto.Json_r body -> graph_n_from_info body graph
            | _ -> failwith "lbcc-serve: unexpected info reply"
          in
          let b = Workload.rhs ~n ~op_seed:rhs_seed in
          describe_response
            (snd (rpc c ~id:2 (Proto.Solve { name = graph; eps; b })))
      | "resistance" ->
          describe_response
            (snd (rpc c ~id:1 (Proto.Resistance { name = graph; eps; s; t })))
      | "flow" -> describe_response (snd (rpc c ~id:1 (Proto.Flow { name = net })))
      | "update" ->
          let explicit =
            List.map parse_insert inserts
            @ List.map (fun id -> Graph.Delta.Delete id) deletes
            @ List.map parse_reweight reweights
          in
          let randomized =
            if random <= 0 then []
            else begin
              (* Size the random ops against the daemon's current view of
                 the graph. *)
              let info =
                match rpc c ~id:1 Proto.Info with
                | _, Proto.Json_r body -> body
                | _ -> failwith "lbcc-serve: unexpected info reply"
              in
              let n = graph_field_from_info info graph "n" in
              let m = graph_field_from_info info graph "m" in
              random_ops ~seed:rhs_seed ~n ~m random
            end
          in
          let delta = Graph.Delta.of_ops (explicit @ randomized) in
          if Graph.Delta.is_empty delta then begin
            Printf.eprintf
              "lbcc-serve: empty delta (pass --insert/--delete/--reweight or \
               --random)\n";
            Stdlib.exit 2
          end;
          describe_response
            (snd (rpc c ~id:2 (Proto.Update { name = graph; delta })))
      | other -> `Error (true, "unknown operation " ^ other))

let client_cmd =
  let op =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:"stats, info, shutdown, solve, resistance, flow or update.")
  in
  let graph =
    Arg.(value & opt string "g0" & info [ "graph" ] ~docv:"NAME" ~doc:"Fleet graph name.")
  in
  let net =
    Arg.(value & opt string "f0" & info [ "net" ] ~docv:"NAME" ~doc:"Fleet network name.")
  in
  let rhs_seed =
    Arg.(value & opt int 7 & info [ "rhs-seed" ] ~docv:"SEED" ~doc:"Right-hand-side seed.")
  in
  let eps =
    Arg.(value & opt float solve_eps & info [ "eps" ] ~docv:"EPS" ~doc:"Solve accuracy.")
  in
  let s_arg = Arg.(value & opt int 0 & info [ "s" ] ~docv:"S" ~doc:"Source vertex.") in
  let t_arg = Arg.(value & opt int 1 & info [ "t" ] ~docv:"T" ~doc:"Target vertex.") in
  let inserts =
    Arg.(
      value & opt_all string []
      & info [ "insert" ] ~docv:"U:V:W"
          ~doc:"Insert an edge (repeatable; update op only).")
  in
  let deletes =
    Arg.(
      value & opt_all int []
      & info [ "delete" ] ~docv:"ID"
          ~doc:"Delete the edge with this id (repeatable; update op only).")
  in
  let reweights =
    Arg.(
      value & opt_all string []
      & info [ "reweight" ] ~docv:"ID:W"
          ~doc:"Reweight the edge with this id (repeatable; update op only).")
  in
  let random =
    Arg.(
      value & opt int 0
      & info [ "random" ] ~docv:"K"
          ~doc:
            "Append K seeded random delta ops sized from the daemon's Info \
             reply (update op only; seeded by --rhs-seed).")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send one request to a running daemon.")
    Term.(
      ret
        (const run_client $ socket_arg $ op $ graph $ net $ rhs_seed $ eps
       $ s_arg $ t_arg $ inserts $ deletes $ reweights $ random))

(* ------------------------------------------------------------------ *)
(* bench: fork daemons, replay the zipf trace, write BENCH_SERVE.json   *)

let req_of_op fleet op =
  let entry i = List.nth fleet.Fleet.entries i in
  match op with
  | Workload.Solve_op { graph; op_seed } ->
      let e = entry graph in
      let n = Graph.n e.Fleet.graph in
      Proto.Solve { name = e.Fleet.name; eps = solve_eps; b = Workload.rhs ~n ~op_seed }
  | Workload.Resistance_op { graph; op_seed } ->
      let e = entry graph in
      let n = Graph.n e.Fleet.graph in
      let s, t = Workload.st_pair ~n ~op_seed in
      Proto.Resistance { name = e.Fleet.name; eps = resist_eps; s; t }
  | Workload.Flow_op { net } ->
      Proto.Flow { name = (List.nth fleet.Fleet.nets net).Fleet.net_name }

(* Fork a daemon child for [endpoint].  The parent binds the listening
   socket first, so clients can connect (into the backlog) before the child
   reaches its accept loop — no readiness handshake needed. *)
let fork_daemon daemon_cfg fleet_cfg endpoint =
  let listen_fd = Server.bind_listen endpoint in
  match Unix.fork () with
  | 0 ->
      let code =
        try
          let fleet = Fleet.build fleet_cfg in
          let daemon = Daemon.create daemon_cfg fleet in
          Server.run daemon listen_fd;
          0
        with e ->
          Printf.eprintf "lbcc-serve[daemon]: %s\n%!" (Printexc.to_string e);
          3
      in
      Stdlib.exit code
  | pid ->
      Unix.close listen_fd;
      pid

type phase_client = {
  pc_fd : Unix.file_descr;
  pc_reader : Proto.Reader.t;
  pc_ops : (int * Proto.request) array;
  mutable pc_sent : int;
  mutable pc_recv : int;
  mutable pc_inflight : int;
}

type phase_result = {
  responses : Proto.response option array;
  latencies : float array;  (* per request id, seconds *)
  wall_s : float;
  stats : string;  (* the daemon's final stats JSON *)
}

(* Replay [reqs] (per-client arrays of (global id, request)) against the
   daemon at [endpoint] with at most [inflight] outstanding requests per
   client (closed loop), then fetch stats and shut the daemon down. *)
let run_phase ~endpoint ~reqs ~inflight ~deadline_s =
  let total = Array.fold_left (fun a ops -> a + Array.length ops) 0 reqs in
  let responses = Array.make total None in
  let t_send = Array.make total 0.0 in
  let latencies = Array.make total 0.0 in
  let clients =
    Array.map
      (fun ops ->
        {
          pc_fd = Server.connect endpoint;
          pc_reader = Proto.Reader.create ();
          pc_ops = ops;
          pc_sent = 0;
          pc_recv = 0;
          pc_inflight = 0;
        })
      reqs
  in
  let send_ready c =
    while c.pc_inflight < inflight && c.pc_sent < Array.length c.pc_ops do
      let id, req = c.pc_ops.(c.pc_sent) in
      t_send.(id) <- Clock.now_s ();
      write_all c.pc_fd (Proto.encode_request ~id req);
      c.pc_sent <- c.pc_sent + 1;
      c.pc_inflight <- c.pc_inflight + 1
    done
  in
  let scratch = Bytes.create 65536 in
  let t0 = Clock.now_s () in
  let deadline = t0 +. deadline_s in
  Array.iter send_ready clients;
  let unfinished () =
    Array.exists (fun c -> c.pc_recv < Array.length c.pc_ops) clients
  in
  while unfinished () do
    if Clock.now_s () > deadline then
      failwith "lbcc-serve: bench phase deadline exceeded";
    let waiting =
      Array.to_list clients
      |> List.filter (fun c -> c.pc_recv < Array.length c.pc_ops)
    in
    let ready, _, _ =
      match Unix.select (List.map (fun c -> c.pc_fd) waiting) [] [] 1.0 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun c ->
        if List.memq c.pc_fd ready then begin
          let k = Unix.read c.pc_fd scratch 0 (Bytes.length scratch) in
          if k = 0 then failwith "lbcc-serve: daemon closed a bench connection";
          Proto.Reader.feed c.pc_reader scratch k;
          let rec pump () =
            match Proto.Reader.next c.pc_reader with
            | None -> ()
            | Some payload ->
                let id, resp = Proto.decode_response payload in
                responses.(id) <- Some resp;
                latencies.(id) <- Clock.now_s () -. t_send.(id);
                c.pc_recv <- c.pc_recv + 1;
                c.pc_inflight <- c.pc_inflight - 1;
                pump ()
          in
          pump ();
          send_ready c
        end)
      waiting
  done;
  let wall_s = Clock.now_s () -. t0 in
  Array.iter (fun c -> try Unix.close c.pc_fd with Unix.Unix_error _ -> ()) clients;
  let ctl = conn_open endpoint in
  let stats =
    match rpc ctl ~id:0 Proto.Stats with
    | _, Proto.Json_r body -> body
    | _ -> failwith "lbcc-serve: unexpected stats reply"
  in
  (match rpc ctl ~id:0 Proto.Shutdown with
  | _, Proto.Ok_r -> ()
  | _ -> failwith "lbcc-serve: unexpected shutdown reply");
  conn_close ctl;
  { responses; latencies; wall_s; stats }

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx =
      Stdlib.min (n - 1)
        (int_of_float (Float.of_int n *. q) |> Stdlib.max 0)
    in
    sorted.(idx)

(* Recompute every traced operation in-process (same seed, same fleet) and
   render it as the wire response the daemon should have produced: the
   identity check is then plain [Bytes.equal] on encoded frames. *)
let direct_responses fleet seed ops =
  let ctx = Ctx.make ~seed () in
  let handles =
    List.map
      (fun (e : Fleet.entry) -> (e.Fleet.name, Prepared.create ~ctx e.Fleet.graph))
      fleet.Fleet.entries
  in
  let handle name = List.assoc name handles in
  Array.map
    (fun op ->
      match op with
      | Workload.Solve_op { graph; op_seed } ->
          let e = List.nth fleet.Fleet.entries graph in
          let n = Graph.n e.Fleet.graph in
          let q =
            Prepared.solve ~eps:solve_eps (handle e.Fleet.name)
              ~b:(Workload.rhs ~n ~op_seed)
          in
          Proto.Solution
            {
              solution = q.Prepared.solution;
              residual = q.Prepared.residual;
              iterations = q.Prepared.iterations;
              rounds = q.Prepared.rounds;
              bits = q.Prepared.bits;
            }
      | Workload.Resistance_op { graph; op_seed } ->
          let e = List.nth fleet.Fleet.entries graph in
          let n = Graph.n e.Fleet.graph in
          let s, t = Workload.st_pair ~n ~op_seed in
          let b = Vec.zeros n in
          b.(s) <- b.(s) +. 1.0;
          b.(t) <- b.(t) -. 1.0;
          let q = Prepared.solve ~eps:resist_eps (handle e.Fleet.name) ~b in
          Proto.Resistance_r
            {
              resistance = q.Prepared.solution.(s) -. q.Prepared.solution.(t);
              rounds = q.Prepared.rounds;
              bits = q.Prepared.bits;
            }
      | Workload.Flow_op { net } ->
          let ne = List.nth fleet.Fleet.nets net in
          let r = Lbcc.min_cost_max_flow ~ctx ne.Fleet.net in
          Proto.Flow_r
            {
              flow = r.Lbcc.flow;
              value = r.Lbcc.value;
              cost = r.Lbcc.cost;
              rounds = r.Lbcc.rounds.Lbcc.total;
              bits = r.Lbcc.rounds.Lbcc.bits;
            })
    ops

let run_bench out endpoint_base fleet_cfg wl_cfg inflight min_amort min_speedup
    max_p99 =
  let wl_cfg =
    { wl_cfg with Workload.graphs = fleet_cfg.Fleet.graphs;
      networks = fleet_cfg.Fleet.networks }
  in
  let fleet = Fleet.build fleet_cfg in
  let trace = Workload.trace wl_cfg in
  let flat_ops = Array.concat (Array.to_list trace) in
  let total = Array.length flat_ops in
  (* global id = position in client-major order *)
  let reqs =
    let next = ref 0 in
    Array.map
      (Array.map (fun op ->
           let id = !next in
           incr next;
           (id, req_of_op fleet op)))
      trace
  in
  let ep tag =
    match endpoint_base with
    | Server.Unix_sock path -> Server.Unix_sock (path ^ "." ^ tag)
    | Server.Tcp (host, port) ->
        Server.Tcp
          (host, port + match tag with "a" -> 0 | "b" -> 1 | _ -> 2)
  in
  let sched_coalesced =
    { Sched.default_config with Sched.max_queue = Stdlib.max 256 total }
  in
  let overload_queue = Stdlib.max 1 (total / 2) in
  (* All forks happen before the parent touches the worker pool (the
     direct-solve identity check below): forking after domains exist is
     not safe in OCaml 5. *)
  let pid_a =
    fork_daemon
      { Daemon.sched = sched_coalesced; seed = fleet_cfg.Fleet.seed;
        cache_capacity = 8; prepare_on_load = true }
      fleet_cfg (ep "a")
  in
  let pid_b =
    fork_daemon
      { Daemon.sched =
          { sched_coalesced with Sched.max_batch = 1; window = 0; coalesce = false };
        seed = fleet_cfg.Fleet.seed; cache_capacity = 0; prepare_on_load = false }
      fleet_cfg (ep "b")
  in
  let pid_c =
    fork_daemon
      { Daemon.sched = { Sched.default_config with Sched.max_queue = overload_queue };
        seed = fleet_cfg.Fleet.seed; cache_capacity = 8; prepare_on_load = true }
      fleet_cfg (ep "c")
  in
  let reap pid = ignore (Unix.waitpid [] pid : int * Unix.process_status) in
  Printf.printf
    "SERVE: %d requests (%d clients x %d), %d graphs n=%d, zipf %.2f\n%!" total
    wl_cfg.Workload.clients wl_cfg.Workload.per_client fleet_cfg.Fleet.graphs
    fleet_cfg.Fleet.vertices wl_cfg.Workload.zipf_s;
  let deadline_s = 600.0 in
  (* Phase A: the coalescing daemon under the closed-loop zipf load. *)
  let a = run_phase ~endpoint:(ep "a") ~reqs ~inflight ~deadline_s in
  reap pid_a;
  let rounds_a = json_int_exn a.stats "rounds" in
  let served_a = json_int_exn a.stats "served" in
  let batches_a = json_int_exn a.stats "batches" in
  let hits_a = match json_int a.stats "hits" with Some v -> v | None -> 0 in
  let misses_a = match json_int a.stats "misses" with Some v -> v | None -> 0 in
  Printf.printf
    "  coalesced: %.3fs wall, %d rounds, %d batches (%.1f req/batch), cache \
     %d/%d hits\n%!"
    a.wall_s rounds_a batches_a
    (float_of_int served_a /. float_of_int (Stdlib.max 1 batches_a))
    hits_a (hits_a + misses_a);
  (* Phase B: serial dispatch, no handle reuse — preprocessing per request. *)
  let b = run_phase ~endpoint:(ep "b") ~reqs ~inflight ~deadline_s in
  reap pid_b;
  let rounds_b = json_int_exn b.stats "rounds" in
  let served_b = json_int_exn b.stats "served" in
  Printf.printf "  serial:    %.3fs wall, %d rounds\n%!" b.wall_s rounds_b;
  (* Phase C: 2x overload against a daemon whose queue holds half the
     offered load; every request must still get an explicit answer. *)
  let c =
    run_phase ~endpoint:(ep "c") ~reqs ~inflight:(Stdlib.max 1 total)
      ~deadline_s
  in
  reap pid_c;
  let rejected_c = json_int_exn c.stats "rejected" in
  let admitted_c = json_int_exn c.stats "admitted" in
  let answered_c =
    Array.fold_left
      (fun acc r -> match r with Some _ -> acc + 1 | None -> acc)
      0 c.responses
  in
  let rejected_seen_c =
    Array.fold_left
      (fun acc r ->
        match r with
        | Some (Proto.Error_r { code = Proto.Overloaded; _ }) -> acc + 1
        | _ -> acc)
      0 c.responses
  in
  Printf.printf
    "  overload:  queue %d vs %d offered -> %d admitted, %d rejected, %d \
     answered\n%!"
    overload_queue total admitted_c rejected_c answered_c;
  (* Identity: daemon responses (batched AND serial) must match the direct
     in-process computation bit-for-bit. *)
  let direct = direct_responses fleet fleet_cfg.Fleet.seed flat_ops in
  let matched = ref 0 in
  Array.iteri
    (fun id d ->
      match (a.responses.(id), b.responses.(id)) with
      | Some ra, Some rb ->
          let enc r = Proto.encode_response ~id:0 r in
          if Bytes.equal (enc ra) (enc d) && Bytes.equal (enc rb) (enc d) then
            incr matched
      | _ -> ())
    direct;
  let identity = float_of_int !matched /. float_of_int total in
  Printf.printf "  identity:  %d/%d responses bit-identical (batched = serial = direct)\n%!"
    !matched total;
  let lat_sorted = Array.copy a.latencies in
  Array.sort Float.compare lat_sorted;
  let p50 = exact_quantile lat_sorted 0.50 in
  let p99 = exact_quantile lat_sorted 0.99 in
  let rpr_a = float_of_int rounds_a /. float_of_int (Stdlib.max 1 served_a) in
  let rpr_b = float_of_int rounds_b /. float_of_int (Stdlib.max 1 served_b) in
  let amortization = rpr_b /. rpr_a in
  let wall_speedup = b.wall_s /. a.wall_s in
  Printf.printf
    "  rounds/request: serial %.1f vs coalesced %.1f (%.1fx); wall speedup \
     %.1fx; p50 %.3fs p99 %.3fs\n%!"
    rpr_b rpr_a amortization wall_speedup p50 p99;
  let cl ?direction name measured bound =
    Report.claim ?direction ~name ~measured ~bound ()
  in
  let claims =
    [
      cl ~direction:Report.Ge
        "coalesced model throughput vs serial dispatch (rounds/request ratio)"
        amortization min_amort;
      cl ~direction:Report.Ge
        (Printf.sprintf "coalesced wall-clock throughput vs serial at concurrency %d"
           wl_cfg.Workload.clients)
        wall_speedup min_speedup;
      cl "client-observed p99 latency (s), coalesced" p99 max_p99;
      cl ~direction:Report.Ge
        "responses bit-identical: batched = serial = direct" identity 1.0;
      cl ~direction:Report.Ge "overload at 2x queue budget: explicit rejections"
        (float_of_int rejected_c) 1.0;
      cl ~direction:Report.Ge "overload: every offered request answered"
        (float_of_int answered_c /. float_of_int total)
        1.0;
      cl ~direction:Report.Ge "prepared-handle cache hit rate under zipf load"
        (float_of_int hits_a /. float_of_int (Stdlib.max 1 (hits_a + misses_a)))
        0.5;
    ]
  in
  let report =
    {
      Report.experiment = "SERVE";
      title = "solver daemon: coalescing throughput, tail latency, admission";
      claims;
      phases = [];
      extra =
        [
          ("requests", Json.Int total);
          ("clients", Json.Int wl_cfg.Workload.clients);
          ("per_client", Json.Int wl_cfg.Workload.per_client);
          ("inflight", Json.Int inflight);
          ("graphs", Json.Int fleet_cfg.Fleet.graphs);
          ("vertices", Json.Int fleet_cfg.Fleet.vertices);
          ("zipf_s", Json.Float wl_cfg.Workload.zipf_s);
          ( "coalesced",
            Json.Obj
              [
                ("wall_s", Json.Float a.wall_s);
                ("rounds", Json.Int rounds_a);
                ("batches", Json.Int batches_a);
                ("rounds_per_request", Json.Float rpr_a);
                ("p50_latency_s", Json.Float p50);
                ("p99_latency_s", Json.Float p99);
                ("cache_hits", Json.Int hits_a);
                ("cache_misses", Json.Int misses_a);
              ] );
          ( "serial",
            Json.Obj
              [
                ("wall_s", Json.Float b.wall_s);
                ("rounds", Json.Int rounds_b);
                ("rounds_per_request", Json.Float rpr_b);
              ] );
          ( "overload",
            Json.Obj
              [
                ("max_queue", Json.Int overload_queue);
                ("offered", Json.Int total);
                ("admitted", Json.Int admitted_c);
                ("rejected", Json.Int rejected_c);
                ("rejections_seen_by_clients", Json.Int rejected_seen_c);
                ("answered", Json.Int answered_c);
              ] );
        ];
    }
  in
  let path = Report.write ~dir:out report in
  let ok = List.for_all Report.within claims in
  Printf.printf "report -> %s (within_bound=%b)\n%!" path ok;
  if not ok then Stdlib.exit 1;
  `Ok ()

let bench_cmd =
  let out =
    Arg.(
      value & opt string "_bench_reports"
      & info [ "out" ] ~docv:"DIR" ~doc:"Report directory.")
  in
  let clients =
    Arg.(value & opt int 16 & info [ "clients" ] ~docv:"K" ~doc:"Concurrent clients.")
  in
  let per_client =
    Arg.(value & opt int 4 & info [ "per-client" ] ~docv:"R" ~doc:"Requests per client.")
  in
  let zipf =
    Arg.(value & opt float 1.0 & info [ "zipf" ] ~docv:"S" ~doc:"Zipf exponent.")
  in
  let resistance_frac =
    Arg.(
      value & opt float 0.25
      & info [ "resistance-frac" ] ~docv:"P" ~doc:"Fraction of resistance queries.")
  in
  let flows =
    Arg.(value & opt int 2 & info [ "flows" ] ~docv:"F" ~doc:"Total flow requests.")
  in
  let inflight =
    Arg.(
      value & opt int 4
      & info [ "inflight" ] ~docv:"I" ~doc:"Outstanding requests per client.")
  in
  let min_amort =
    Arg.(
      value & opt float 4.0
      & info [ "min-amortization" ] ~docv:"X"
          ~doc:"Claim bound: coalesced/serial rounds-per-request ratio.")
  in
  let min_speedup =
    Arg.(
      value & opt float 2.0
      & info [ "min-speedup" ] ~docv:"X" ~doc:"Claim bound: wall-clock throughput ratio.")
  in
  let max_p99 =
    Arg.(
      value & opt float 2.0
      & info [ "max-p99" ] ~docv:"S" ~doc:"Claim bound: p99 latency (seconds).")
  in
  let wl_term =
    let make seed clients per_client zipf_s resistance_frac flows networks =
      {
        Workload.seed;
        clients;
        per_client;
        graphs = 1 (* overwritten from the fleet config *);
        zipf_s;
        resistance_frac;
        flows = (if networks > 0 then flows else 0);
        networks;
      }
    in
    Term.(
      const make $ seed_arg $ clients $ per_client $ zipf $ resistance_frac
      $ flows $ networks_arg)
  in
  let base_endpoint =
    Arg.(
      value
      & opt endpoint_conv (Server.Unix_sock "/tmp/lbcc-serve-bench.sock")
      & info [ "socket" ] ~docv:"ENDPOINT"
          ~doc:
            "Base endpoint; the three phase daemons use suffixed sockets \
             (or consecutive TCP ports).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Fork daemons, replay a seeded zipf load, and write the \
          BENCH_SERVE.json throughput/latency/admission report.")
    Term.(
      ret
        (const run_bench $ out $ base_endpoint $ fleet_term $ wl_term
       $ inflight $ min_amort $ min_speedup $ max_p99))

(* ------------------------------------------------------------------ *)

let main_cmd =
  Cmd.group
    (Cmd.info "lbcc-serve" ~version:"dev"
       ~doc:"Coalescing Laplacian-solver daemon (DESIGN.md §11).")
    [ serve_cmd; client_cmd; bench_cmd ]

(* Exit contract: 0 success; 1 SLO claim violation (the exit 1 inside the
   bench); 2 usage; 3 internal error or timeout. *)
let () =
  let code =
    try Cmd.eval ~catch:false main_cmd with
    | Failure msg ->
        Printf.eprintf "lbcc-serve: %s\n" msg;
        125
    | Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "lbcc-serve: %s(%s): %s\n" fn arg (Unix.error_message e);
        125
  in
  match code with
  | 0 -> Stdlib.exit 0
  | 123 | 124 -> Stdlib.exit 2
  | 125 -> Stdlib.exit 3
  | n -> Stdlib.exit n
