(* lbcc-lint — static analysis enforcing the determinism and round-accounting
   discipline of the reproduction (see DESIGN.md §8/§13 for the rule
   rationale).

     lbcc_lint [--json] [--out FILE] [--sarif FILE] [--root DIR] [--strict]
               [--typed] [--baseline FILE | --diff-base FILE]
               [--write-baseline FILE] [--list-rules] PATH...

   PATHs are files or directories, relative to --root (default: the current
   directory); rule scoping keys off those relative paths, so run it from
   the repository root (or point --root there).

   --typed layers the cmt-based interprocedural passes (determinism taint,
   parallel-region races, phase-accounting flow) on top of the untyped
   rules; it needs `dune build` to have run first.  --baseline subtracts a
   saved report so only NEW violations fail; --write-baseline saves the
   current findings as that report.

   Exit codes: 0 clean; 1 violations found (errors, plus warnings under
   --strict); 2 usage, I/O error, or --typed without build artifacts. *)

let usage () =
  prerr_endline
    "usage: lbcc_lint [--json] [--out FILE] [--sarif FILE] [--root DIR] \
     [--strict] [--typed] [--baseline FILE] [--write-baseline FILE] \
     [--list-rules] PATH...\n\
     --json prints the lbcc-lint/1 report to stdout (or to --out FILE);\n\
     --sarif FILE additionally writes a SARIF 2.1.0 report;\n\
     --typed runs the cmt-based interprocedural passes (build first);\n\
     --baseline FILE (alias --diff-base) fails only on violations not in \
     FILE;\n\
     --write-baseline FILE saves the current findings as a baseline;\n\
     --strict makes warnings fail the run; --list-rules documents the rules.";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Lint_rules.rule) ->
      Printf.printf "%-26s %-7s %s\n" r.Lint_rules.name
        (Lint_diag.severity_to_string r.Lint_rules.severity)
        r.Lint_rules.doc)
    Lint_rules.rules;
  exit 0

let write_file file contents =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let () =
  let json = ref false and out = ref None and root = ref "." in
  let strict = ref false and typed = ref false and rev_paths = ref [] in
  let sarif = ref None and baseline = ref None and write_baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | "--sarif" :: file :: rest ->
        sarif := Some file;
        parse rest
    | ("--baseline" | "--diff-base") :: file :: rest ->
        baseline := Some file;
        parse rest
    | "--write-baseline" :: file :: rest ->
        write_baseline := Some file;
        parse rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse rest
    | [ ("--out" | "--sarif" | "--baseline" | "--diff-base"
        | "--write-baseline" | "--root") ] ->
        usage ()
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--typed" :: rest ->
        typed := true;
        parse rest
    | "--list-rules" :: _ -> list_rules ()
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest ->
        rev_paths := p :: !rev_paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let json = !json and out = !out and root = !root and strict = !strict in
  let paths = List.rev !rev_paths in
  if paths = [] then usage ();
  let run () =
    if !typed then Lint_driver.run_typed ~root paths
    else Lint_driver.run ~root paths
  in
  match run () with
  | exception Sys_error msg ->
      Printf.eprintf "lbcc_lint: %s\n" msg;
      exit 2
  | exception Lint_driver.Typed_unavailable msg ->
      Printf.eprintf "lbcc_lint: %s\n" msg;
      exit 2
  | result ->
      let report =
        Lbcc_obs.Json.to_string ~pretty:true (Lint_driver.to_json result)
      in
      (match out with
      | Some file -> write_file file (report ^ "\n")
      | None -> ());
      (match !write_baseline with
      | Some file -> write_file file (report ^ "\n")
      | None -> ());
      (match !sarif with
      | Some file -> write_file file (Lint_sarif.to_string result.Lint_driver.diags)
      | None -> ());
      (* The gating set: everything, minus the baseline if one was given. *)
      let gated =
        match !baseline with
        | None -> Ok result
        | Some file -> (
            match Lint_baseline.load file with
            | Error msg -> Error msg
            | Ok keys ->
                Ok
                  {
                    result with
                    Lint_driver.diags =
                      Lint_baseline.filter ~baseline:keys
                        result.Lint_driver.diags;
                  })
      in
      (match gated with
      | Error msg ->
          Printf.eprintf "lbcc_lint: %s\n" msg;
          exit 2
      | Ok gated ->
          if json && out = None then print_endline report
          else begin
            Lint_driver.render_text Format.std_formatter gated;
            match !baseline with
            | Some _ ->
                let suppressed =
                  List.length result.Lint_driver.diags
                  - List.length gated.Lint_driver.diags
                in
                if suppressed > 0 then
                  Format.printf "(%d baseline finding%s suppressed)@."
                    suppressed
                    (if suppressed = 1 then "" else "s")
            | None -> ()
          end;
          let failing =
            Lint_driver.errors gated
            + if strict then Lint_driver.warnings gated else 0
          in
          exit (if failing > 0 then 1 else 0))
