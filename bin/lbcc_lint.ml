(* lbcc-lint — static analysis enforcing the determinism and round-accounting
   discipline of the reproduction (see DESIGN.md §8 for the rule rationale).

     lbcc_lint [--json] [--out FILE] [--root DIR] [--strict] [--list-rules]
               PATH...

   PATHs are files or directories, relative to --root (default: the current
   directory); rule scoping keys off those relative paths, so run it from
   the repository root (or point --root there).

   Exit codes: 0 clean; 1 violations found (errors, plus warnings under
   --strict); 2 usage or I/O error. *)

let usage () =
  prerr_endline
    "usage: lbcc_lint [--json] [--out FILE] [--root DIR] [--strict] \
     [--list-rules] PATH...\n\
     --json prints the lbcc-lint/1 report to stdout (or to --out FILE);\n\
     --strict makes warnings fail the run; --list-rules documents the rules.";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Lint_rules.rule) ->
      Printf.printf "%-26s %-7s %s\n" r.Lint_rules.name
        (Lint_diag.severity_to_string r.Lint_rules.severity)
        r.Lint_rules.doc)
    Lint_rules.rules;
  exit 0

let () =
  let json = ref false and out = ref None and root = ref "." in
  let strict = ref false and rev_paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | [ "--out" ] -> usage ()
    | "--root" :: dir :: rest ->
        root := dir;
        parse rest
    | [ "--root" ] -> usage ()
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--list-rules" :: _ -> list_rules ()
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest ->
        rev_paths := p :: !rev_paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let json = !json and out = !out and root = !root and strict = !strict in
  let paths = List.rev !rev_paths in
  if paths = [] then usage ();
  match Lint_driver.run ~root paths with
  | exception Sys_error msg ->
      Printf.eprintf "lbcc_lint: %s\n" msg;
      exit 2
  | result ->
      let report = Lbcc_obs.Json.to_string ~pretty:true (Lint_driver.to_json result) in
      (match out with
      | Some file ->
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc report;
              output_char oc '\n')
      | None -> ());
      if json && out = None then print_endline report
      else Lint_driver.render_text Format.std_formatter result;
      let failing =
        Lint_driver.errors result
        + if strict then Lint_driver.warnings result else 0
      in
      exit (if failing > 0 then 1 else 0)
