(* Command-line front end: generate inputs, run the three main algorithms,
   inspect round counts, script robustness experiments.

     lbcc sparsify --vertices 64 --family er --epsilon 0.5 --max-retries 3
     lbcc solve    --vertices 64 --family grid --eps 1e-8
     lbcc solve    --vertices 64 --batch 8       # one prepared handle, 8 RHS
     lbcc prepare  --vertices 64 --queries 8 --repeat 2
     lbcc update   --vertices 64 --steps 4 --ops 8  # incremental sketch
     lbcc spanner  --vertices 96 --stretch 3 --edge-prob 0.5
     lbcc flow     --vertices 8 --density 0.3 --max-capacity 6 --max-cost 5
     lbcc dist     --algo sssp --drop-prob 0.2 --crash 5@30 --fault-seed 7
*)

open Cmdliner
open Lbcc_util
module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Vec = Lbcc_linalg.Vec
module Lbcc = Lbcc_core.Lbcc
module Resilient = Lbcc_core.Resilient
module Model = Lbcc_net.Model
module Rounds = Lbcc_net.Rounds
module Fault = Lbcc_net.Fault
module Engine = Lbcc_net.Engine
module Byzantine = Lbcc_net.Byzantine
module Bfs = Lbcc_dist.Bfs
module Sssp = Lbcc_dist.Sssp
module Leader = Lbcc_dist.Leader
module Trace = Lbcc_obs.Trace
module Metrics = Lbcc_obs.Metrics
module Json = Lbcc_obs.Json
module Report = Lbcc_obs.Report

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the multicore execution layer (default: \
           $(b,LBCC_DOMAINS) or the runtime's recommendation).  Results are \
           identical at every value; only wall-clock changes.")

let engine_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "engine" ] ~docv:"IMPL"
        ~doc:
          "Broadcast engine core: $(b,flat) (struct-of-arrays, the default) \
           or $(b,boxed) (the legacy implementation, kept as the \
           differential baseline).  Default: $(b,LBCC_ENGINE) or flat.  \
           Results are bit-identical either way; only wall-clock changes.")

(* Evaluated before the command body (Cmdliner applies terms left to
   right), so the pool is resized and the engine selected before any work
   runs. *)
let with_domains term =
  let apply domains engine =
    match
      ( domains,
        match engine with
        | None -> Ok None
        | Some s -> (
            match Engine.impl_of_string s with
            | Some i -> Ok (Some i)
            | None -> Error (`Msg "--engine must be flat or boxed")) )
    with
    | Some d, _ when d < 1 -> Error (`Msg "--domains must be >= 1")
    | _, Error e -> Error e
    | d, Ok i ->
        (match d with Some d -> Pool.set_default_domains d | None -> ());
        (match i with Some i -> Engine.set_default_impl i | None -> ());
        Ok ()
  in
  let setup_term =
    Term.term_result Term.(const apply $ domains_arg $ engine_arg)
  in
  Term.(const (fun () r -> r) $ setup_term $ term)

let n_arg =
  Arg.(value & opt int 64 & info [ "n"; "vertices" ] ~docv:"N" ~doc:"Number of vertices.")

let family_arg =
  let families = [ ("er", `Er); ("grid", `Grid); ("complete", `Complete);
                   ("torus", `Torus); ("geometric", `Geometric); ("barbell", `Barbell) ] in
  Arg.(
    value
    & opt (enum families) `Er
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:"Graph family: er, grid, complete, torus, geometric, barbell.")

let w_max_arg =
  Arg.(value & opt int 8 & info [ "w-max" ] ~docv:"W" ~doc:"Maximum edge weight.")

let make_graph family seed n w_max =
  let prng = Prng.create seed in
  match family with
  | `Er -> Gen.erdos_renyi_connected prng ~n ~p:0.3 ~w_max
  | `Grid ->
      let side = Stdlib.max 2 (int_of_float (sqrt (float_of_int n))) in
      Gen.grid prng ~rows:side ~cols:side ~w_max
  | `Complete -> Gen.complete prng ~n ~w_max
  | `Torus ->
      let side = Stdlib.max 3 (int_of_float (sqrt (float_of_int n))) in
      Gen.torus prng ~rows:side ~cols:side ~w_max
  | `Geometric -> Gen.random_geometric prng ~n ~radius:0.3 ~w_max
  | `Barbell -> Gen.barbell prng ~clique:(Stdlib.max 2 (n / 3)) ~path:(Stdlib.max 1 (n / 3)) ~w_max

(* ------------------------------------------------------------------ *)
(* Observability flags (sparsify / solve / flow)                       *)

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Print the hierarchical span tree after the run: per-phase \
           simulated rounds, broadcast bits, engine supersteps and wall \
           clock.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "After the run, print a JSON document with the span tree and the \
           metrics registry as the final line of output (single-line, so \
           $(b,tail -1) extracts it).")

(* The self-healing Resilient wrappers do not thread a tracer (each retry
   would need its own accountant), so the observability flags apply to the
   direct path only. *)
let make_obs ~trace ~json max_retries =
  if (trace || json) && max_retries <> None then begin
    prerr_endline "warning: --trace/--json are ignored with --max-retries";
    (None, None)
  end
  else
    ( (if trace || json then Some (Trace.create ()) else None),
      if trace || json then Some (Metrics.create ()) else None )

let emit_obs ~trace ~json tracer metrics =
  (match tracer with
  | Some tr when trace ->
      Printf.printf "trace:\n";
      Format.printf "%a@?" Trace.pp tr
  | _ -> ());
  if json then
    let fields =
      (match tracer with Some tr -> [ ("trace", Trace.to_json tr) ] | None -> [])
      @
      match metrics with Some m -> [ ("metrics", Metrics.to_json m) ] | None -> []
    in
    (* Single line so tooling can [tail -1] it out of the mixed output. *)
    print_endline (Json.to_string (Json.Obj fields))

let pp_rounds (r : Lbcc.rounds_report) =
  Printf.printf "rounds: %d total (B = %d bits/message)\n" r.Lbcc.total r.Lbcc.bandwidth;
  List.iter (fun (label, rds) -> Printf.printf "  %-28s %d\n" label rds) r.Lbcc.breakdown

(* ------------------------------------------------------------------ *)
(* Fault injection and retry arguments                                 *)

let drop_prob_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "drop-prob" ] ~docv:"P"
        ~doc:"Per-delivery message drop probability (fault injection).")

let dup_prob_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "dup-prob" ] ~docv:"P"
        ~doc:"Per-delivery message duplication probability (fault injection).")

let crash_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ v; r ] -> (
        match (int_of_string_opt v, int_of_string_opt r) with
        | Some v, Some r -> Ok (v, r)
        | _ -> Error (`Msg "expected V@R (vertex@superstep)"))
    | _ -> Error (`Msg "expected V@R (vertex@superstep)")
  in
  Arg.conv (parse, fun ppf (v, r) -> Format.fprintf ppf "%d@%d" v r)

let crash_arg =
  Arg.(
    value
    & opt_all crash_conv []
    & info [ "crash" ] ~docv:"V@R"
        ~doc:"Crash-stop vertex V at superstep R; repeatable.")

let fault_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed of the deterministic fault schedule.")

let corrupt_prob_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "corrupt-prob" ] ~docv:"P"
        ~doc:
          "Per-delivery payload-corruption probability (seeded bit-flip \
           fault injection).")

let byz_count_arg =
  Arg.(
    value
    & opt int 0
    & info [ "byz-count" ] ~docv:"F"
        ~doc:
          "Make the first F vertices Byzantine: they equivocate — tamper \
           each delivery independently per receiver — with probability \
           $(b,--byz-prob).")

let byz_prob_arg =
  Arg.(
    value
    & opt float 0.15
    & info [ "byz-prob" ] ~docv:"P"
        ~doc:
          "Per-delivery tamper probability of a Byzantine sender (only \
           meaningful with $(b,--byz-count) > 0).")

let make_faults drop_prob dup_prob crashes fault_seed corrupt_prob byz_count
    byz_prob =
  let bad fmt = Printf.ksprintf (fun m -> Error (`Msg m)) fmt in
  if drop_prob < 0.0 || drop_prob >= 1.0 then
    bad "--drop-prob must be in [0, 1) (got %g)" drop_prob
  else if dup_prob < 0.0 || dup_prob >= 1.0 then
    bad "--dup-prob must be in [0, 1) (got %g)" dup_prob
  else if corrupt_prob < 0.0 || corrupt_prob >= 1.0 then
    bad "--corrupt-prob must be in [0, 1) (got %g)" corrupt_prob
  else if byz_prob < 0.0 || byz_prob >= 1.0 then
    bad "--byz-prob must be in [0, 1) (got %g)" byz_prob
  else if byz_count < 0 then bad "--byz-count must be >= 0 (got %d)" byz_count
  else if
    drop_prob = 0.0 && dup_prob = 0.0 && crashes = [] && corrupt_prob = 0.0
    && byz_count = 0
  then Ok None
  else
    Ok
      (Some
         (Fault.create ~seed:fault_seed
            (Fault.spec ~drop_prob ~duplicate_prob:dup_prob ~crashes
               ~corrupt_prob
               ~byzantine:(List.init byz_count Fun.id)
               ~byz_prob ())))

let faults_term =
  Term.term_result
    Term.(
      const make_faults $ drop_prob_arg $ dup_prob_arg $ crash_arg
      $ fault_seed_arg $ corrupt_prob_arg $ byz_count_arg $ byz_prob_arg)

(* Pipeline commands cost (rather than simulate) a delivery tier: the
   context's reliability field makes [Lbcc] surcharge every protocol round
   with the tier's recovery overhead (DESIGN.md §9). *)
let ctx_reliability_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("none", Model.None);
             ("crash", Model.Crash_safe);
             ("byzantine", Model.Byzantine_safe) ])
        Model.None
    & info [ "reliability" ] ~docv:"TIER"
        ~doc:
          "Delivery tier the run is costed under: none, crash \
           (ack/retransmit) or byzantine (echo-quorum).  The reported \
           rounds include the tier's per-superstep recovery overhead under \
           its own label.")

let max_retries_arg =
  let arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Run through the self-healing Resilient wrapper with up to N \
             retries; prints an ok/degraded/failed verdict and the attempt \
             log.")
  in
  let validate = function
    | Some n when n < 0 -> Error (`Msg "--max-retries must be >= 0")
    | v -> Ok v
  in
  Term.term_result Term.(const validate $ arg)

let pp_outcome name (o : _ Resilient.outcome) =
  Printf.printf "%s: %s\n%!" name
    (Format.asprintf "%a" Resilient.pp o)

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)

let sparsify_cmd =
  let epsilon =
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"Target spectral error.")
  in
  let t = Arg.(value & opt (some int) None & info [ "t"; "bundle" ] ~doc:"Bundle size override.") in
  let run seed n family w_max epsilon t max_retries reliability trace json =
    let g = make_graph family seed n w_max in
    Printf.printf "input: n=%d m=%d\n" (Graph.n g) (Graph.m g);
    match max_retries with
    | Some max_retries ->
        if reliability <> Model.None then
          prerr_endline "warning: --reliability is ignored with --max-retries";
        ignore
          (make_obs ~trace ~json (Some max_retries)
            : Trace.t option * Metrics.t option);
        let o = Resilient.sparsify ~seed ~epsilon ?t ~max_retries g in
        pp_outcome "sparsify" o;
        Option.iter
          (fun (r : Lbcc.sparsifier_result) ->
            Printf.printf "sparsifier: m=%d  certified eps=%.4f  max out-degree=%d\n"
              (Graph.m r.Lbcc.sparsifier) r.Lbcc.epsilon_achieved r.Lbcc.out_degree_max;
            pp_rounds r.Lbcc.rounds)
          o.Resilient.value
    | None ->
        let tracer, metrics = make_obs ~trace ~json None in
        let ctx = Lbcc.Ctx.make ~seed ?tracer ?metrics ~reliability () in
        let r = Lbcc.sparsify ~ctx ~epsilon ?t g in
        Printf.printf "sparsifier: m=%d  certified eps=%.4f  max out-degree=%d\n"
          (Graph.m r.Lbcc.sparsifier) r.Lbcc.epsilon_achieved r.Lbcc.out_degree_max;
        pp_rounds r.Lbcc.rounds;
        emit_obs ~trace ~json tracer metrics
  in
  Cmd.v
    (Cmd.info "sparsify" ~doc:"Spectral sparsification (Theorem 1.2)")
    (with_domains
       Term.(
         const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ epsilon $ t
         $ max_retries_arg $ ctx_reliability_arg $ trace_arg $ json_arg))

(* Deterministic batch of zero-sum right-hand sides, all drawn from one
   stream so every b differs. *)
let make_rhs ~seed ~nv k =
  let prng = Prng.create (seed + 1) in
  List.init k (fun _ ->
      Vec.mean_center (Vec.init nv (fun _ -> Prng.gaussian prng)))

let solve_cmd =
  let eps = Arg.(value & opt float 1e-8 & info [ "eps" ] ~doc:"Solution accuracy.") in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"K"
          ~doc:
            "Solve K right-hand sides through one prepared handle \
             (preprocessing paid once, queries batched across the worker \
             domains).  K=1 uses the single-solve path.")
  in
  let run seed n family w_max eps batch max_retries reliability trace json =
    let g = make_graph family seed n w_max in
    let nv = Graph.n g in
    Printf.printf "input: n=%d m=%d\n" nv (Graph.m g);
    let report (r : Lbcc.laplacian_result) =
      Printf.printf
        "solved L x = b: residual %.2e in %d iterations\n\
         rounds: %d preprocessing + %d per solve\n"
        r.Lbcc.residual r.Lbcc.iterations r.Lbcc.preprocessing_rounds
        r.Lbcc.solve_rounds
    in
    if batch > 1 then begin
      if max_retries <> None then
        prerr_endline "warning: --max-retries is ignored with --batch";
      let tracer, metrics = make_obs ~trace ~json None in
      let ctx = Lbcc.Ctx.make ~seed ?tracer ?metrics ~reliability () in
      let p, hit = Lbcc.Prepared.create_cached ~ctx g in
      let qs = Lbcc.Prepared.solve_many ~eps p (make_rhs ~seed ~nv batch) in
      let worst =
        List.fold_left
          (fun a (q : Lbcc.Prepared.query_result) -> Float.max a q.residual)
          0.0 qs
      in
      Printf.printf "prepared: fingerprint=%s  cache %s\n"
        (Lbcc.Prepared.fingerprint_hex p)
        (if hit then "hit" else "miss");
      Printf.printf
        "batch of %d solves: worst residual %.2e, %d rounds per query\n"
        batch worst
        (match qs with q :: _ -> q.Lbcc.Prepared.rounds | [] -> 0);
      Printf.printf
        "rounds: %d preprocessing (paid once) + %d query; amortized %.1f \
         per query\n"
        (Lbcc.Prepared.preprocessing_rounds p)
        (Lbcc.Prepared.query_rounds p)
        (Lbcc.Prepared.amortized_rounds_per_query p);
      emit_obs ~trace ~json tracer metrics
    end
    else begin
      let b = List.hd (make_rhs ~seed ~nv 1) in
      match max_retries with
      | Some max_retries ->
          if reliability <> Model.None then
            prerr_endline
              "warning: --reliability is ignored with --max-retries";
          ignore
          (make_obs ~trace ~json (Some max_retries)
            : Trace.t option * Metrics.t option);
          let o = Resilient.solve_laplacian ~seed ~eps ~max_retries g ~b in
          pp_outcome "solve" o;
          Option.iter report o.Resilient.value
      | None ->
          let tracer, metrics = make_obs ~trace ~json None in
          let ctx = Lbcc.Ctx.make ~seed ?tracer ?metrics ~reliability () in
          report (Lbcc.solve_laplacian ~ctx ~eps g ~b);
          emit_obs ~trace ~json tracer metrics
    end
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Laplacian solving (Theorem 1.3)")
    (with_domains
       Term.(
         const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ eps $ batch
         $ max_retries_arg $ ctx_reliability_arg $ trace_arg $ json_arg))

let prepare_cmd =
  let queries =
    Arg.(
      value & opt int 0
      & info [ "queries" ] ~docv:"K"
          ~doc:
            "After preparing, answer K random solve queries through the \
             handle and report the amortized rounds per query.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"R"
          ~doc:
            "Prepare R times; every call after the first hits the handle \
             cache (same graph fingerprint and seed).")
  in
  let run seed n family w_max queries repeat trace json =
    let g = make_graph family seed n w_max in
    let nv = Graph.n g in
    Printf.printf "input: n=%d m=%d\n" nv (Graph.m g);
    let tracer, metrics = make_obs ~trace ~json None in
    let ctx = Lbcc.Ctx.make ~seed ?tracer ?metrics () in
    let handle = ref None in
    for i = 1 to Stdlib.max 1 repeat do
      let p, hit = Lbcc.Prepared.create_cached ~ctx g in
      Printf.printf "prepare[%d]: %s\n" i
        (if hit then "cache hit" else "cache miss (ran preprocessing)");
      handle := Some p
    done;
    let p =
      (* [repeat] is clamped to >= 1 above, so the loop body always ran. *)
      match !handle with
      | Some p -> p
      | None -> failwith "lbcc prepare: internal error, no handle prepared"
    in
    let solver = Lbcc.Prepared.solver p in
    Printf.printf
      "fingerprint: %s\n\
       sparsifier: m=%d  certified kappa=%.3f\n\
       preprocessing: %d rounds, %d bits (paid once per handle)\n"
      (Lbcc.Prepared.fingerprint_hex p)
      (Graph.m (Lbcc_laplacian.Solver.sparsifier solver))
      (Lbcc_laplacian.Solver.kappa solver)
      (Lbcc.Prepared.preprocessing_rounds p)
      (Lbcc.Prepared.preprocessing_bits p);
    if queries > 0 then begin
      let qs = Lbcc.Prepared.solve_many p (make_rhs ~seed ~nv queries) in
      let worst =
        List.fold_left
          (fun a (q : Lbcc.Prepared.query_result) -> Float.max a q.residual)
          0.0 qs
      in
      Printf.printf
        "queries: %d answered, worst residual %.2e, %d rounds each; \
         amortized %.1f rounds per query\n"
        (Lbcc.Prepared.queries p) worst
        (match qs with q :: _ -> q.Lbcc.Prepared.rounds | [] -> 0)
        (Lbcc.Prepared.amortized_rounds_per_query p)
    end;
    let st = Lbcc.Cache.stats (Lbcc.Prepared.shared_cache ()) in
    Printf.printf "cache: %d/%d entries, %d hits, %d misses, %d evictions\n"
      st.Lbcc.Cache.size st.Lbcc.Cache.capacity st.Lbcc.Cache.hits
      st.Lbcc.Cache.misses st.Lbcc.Cache.evictions;
    emit_obs ~trace ~json tracer metrics
  in
  Cmd.v
    (Cmd.info "prepare"
       ~doc:
         "Build (or fetch from cache) a prepared Laplacian operator: \
          Theorem 1.3 preprocessing once, then cheap per-query solves")
    (with_domains
       Term.(
         const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ queries
         $ repeat $ trace_arg $ json_arg))

(* lbcc update: drive an incremental sparsifier sketch through a seeded
   delta stream, certifying every generation and comparing the incremental
   update's rounds against a full rebuild of the accumulated graph. *)
let update_cmd =
  let steps =
    Arg.(
      value & opt int 4
      & info [ "steps" ] ~docv:"R" ~doc:"Deltas applied to the sketch.")
  in
  let ops =
    Arg.(
      value & opt int 8
      & info [ "ops" ] ~docv:"K"
          ~doc:
            "Ops per delta: K/2 inserts, K/4 deletes, the rest reweights \
             (connectivity-preserving, seeded).")
  in
  let epsilon =
    Arg.(
      value & opt float 0.5
      & info [ "epsilon" ] ~doc:"Sketch target spectral error.")
  in
  let run seed n family w_max steps ops epsilon json =
    let module Sparsify = Lbcc_sparsifier.Sparsify in
    let module Certify = Lbcc_sparsifier.Certify in
    let g = make_graph family seed n w_max in
    Printf.printf "input: n=%d m=%d\n" (Graph.n g) (Graph.m g);
    let prng = Prng.create seed in
    let delta_prng = Prng.create (seed + 1) in
    let sk = ref (Sparsify.sketch ~prng ~graph:g ~epsilon ()) in
    Printf.printf "sketch: m=%d in %d rounds (full build)\n"
      (Graph.m !sk.Sparsify.sparsifier)
      !sk.Sparsify.last_rounds;
    Printf.printf "%4s %6s %6s %8s %8s %10s %10s %8s\n" "gen" "|d|" "m"
      "passed" "resamp" "upd-rnds" "full-rnds" "eps";
    let rows = ref [] in
    let certified = ref true in
    for _step = 1 to Stdlib.max 1 steps do
      let d =
        Gen.delta ~w_max ~connected:true delta_prng ~graph:!sk.Sparsify.base
          ~inserts:(Stdlib.max 1 (ops / 2))
          ~deletes:(ops / 4)
          ~reweights:(Stdlib.max 0 (ops - (ops / 2) - (ops / 4)))
          ()
      in
      sk := Sparsify.update ~prng !sk d;
      (* What a from-scratch build of the accumulated graph would cost —
         same prng discipline as the sketch's own full-build fallback. *)
      let full =
        Sparsify.run ~prng:(Prng.create seed) ~graph:!sk.Sparsify.base
          ~epsilon ()
      in
      let cert =
        Certify.exact !sk.Sparsify.base !sk.Sparsify.sparsifier
      in
      (* KPPS composition: each re-sampling generation may multiply the
         error, so judge against the composed budget, not the per-step
         epsilon. *)
      let budget =
        ((1.0 +. epsilon) ** float_of_int (1 + !sk.Sparsify.generation)) -. 1.0
      in
      let ok = cert.Certify.epsilon_achieved <= budget in
      if not ok then certified := false;
      Printf.printf "%4d %6d %6d %8d %8d %10d %10d %7.3f%s\n"
        !sk.Sparsify.generation (Graph.Delta.size d)
        (Graph.m !sk.Sparsify.sparsifier)
        !sk.Sparsify.passed !sk.Sparsify.resampled !sk.Sparsify.last_rounds
        full.Sparsify.rounds cert.Certify.epsilon_achieved
        (if ok then "" else " FAIL");
      rows :=
        Json.Obj
          [
            ("generation", Json.Int !sk.Sparsify.generation);
            ("delta_ops", Json.Int (Graph.Delta.size d));
            ("update_rounds", Json.Int !sk.Sparsify.last_rounds);
            ("full_rounds", Json.Int full.Sparsify.rounds);
            ("epsilon_achieved", Json.Float cert.Certify.epsilon_achieved);
            ("epsilon_budget", Json.Float budget);
          ]
        :: !rows
    done;
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("steps", Json.Arr (List.rev !rows));
                ("certified", Json.Bool !certified);
              ]));
    if not !certified then begin
      prerr_endline "lbcc update: a generation exceeded its error budget";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Mutate a graph through Graph.Delta batches, maintaining the \
          sparsifier incrementally (certified each generation)")
    (with_domains
       Term.(
         const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ steps $ ops
         $ epsilon $ json_arg))

let spanner_cmd =
  let k = Arg.(value & opt int 3 & info [ "k"; "stretch" ] ~doc:"Stretch parameter (2k-1).") in
  let edge_prob =
    Arg.(value & opt float 1.0 & info [ "edge-prob" ] ~doc:"Edge survival probability.")
  in
  let run seed n family w_max k edge_prob =
    let g = make_graph family seed n w_max in
    Printf.printf "input: n=%d m=%d\n" (Graph.n g) (Graph.m g);
    let p = Array.make (Graph.m g) edge_prob in
    let r = Lbcc_spanner.Spanner.run ~prng:(Prng.create seed) ~graph:g ~p ~k () in
    let h = Graph.sub_edges g r.Lbcc_spanner.Spanner.fplus in
    Printf.printf
      "spanner: |F+|=%d |F-|=%d  stretch=%.2f (bound %d)  rounds=%d  views agree=%b\n"
      (List.length r.Lbcc_spanner.Spanner.fplus)
      (List.length r.Lbcc_spanner.Spanner.fminus)
      (Lbcc_graph.Paths.stretch g h)
      ((2 * k) - 1)
      r.Lbcc_spanner.Spanner.rounds r.Lbcc_spanner.Spanner.views_agree
  in
  Cmd.v
    (Cmd.info "spanner" ~doc:"Baswana-Sen spanner with probabilistic edges (Section 3.1)")
    (with_domains
       Term.(const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ k $ edge_prob))

let flow_cmd =
  let density = Arg.(value & opt float 0.3 & info [ "density" ] ~doc:"Arc density.") in
  let max_capacity =
    Arg.(value & opt int 6 & info [ "max-capacity" ] ~doc:"Maximum arc capacity.")
  in
  let max_cost = Arg.(value & opt int 5 & info [ "max-cost" ] ~doc:"Maximum arc cost.") in
  let input =
    Arg.(
      value
      & opt (some file) None
      & info [ "input" ] ~docv:"FILE"
          ~doc:"Read the network from FILE (see Network_io format) instead of \
                generating one.")
  in
  let output_dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "output-dot" ] ~docv:"FILE"
          ~doc:"Write the network with the optimal flow as Graphviz DOT.")
  in
  let run seed n density max_capacity max_cost input output_dot max_retries
      reliability trace json =
    let net =
      match input with
      | Some path -> Lbcc_flow.Network_io.load path
      | None ->
          Lbcc_flow.Network.random (Prng.create seed) ~n ~density ~max_capacity
            ~max_cost
    in
    Printf.printf "network: n=%d m=%d\n" net.Lbcc_flow.Network.n
      (Lbcc_flow.Network.m net);
    let report (r : Lbcc.flow_result) =
      Printf.printf
        "min-cost max-flow: value=%d cost=%d  exact vs baseline=%b\n\
         IPM iterations=%d  total rounds=%d\n"
        r.Lbcc.value r.Lbcc.cost r.Lbcc.exact r.Lbcc.ipm_iterations
        r.Lbcc.rounds.Lbcc.total;
      match output_dot with
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Lbcc_flow.Network_io.to_dot ~flow:r.Lbcc.flow net));
          Printf.printf "wrote %s\n" path
      | None -> ()
    in
    match max_retries with
    | Some max_retries ->
        if reliability <> Model.None then
          prerr_endline "warning: --reliability is ignored with --max-retries";
        ignore
          (make_obs ~trace ~json (Some max_retries)
            : Trace.t option * Metrics.t option);
        let o = Resilient.min_cost_max_flow ~seed ~max_retries net in
        pp_outcome "flow" o;
        Option.iter report o.Resilient.value
    | None ->
        let tracer, metrics = make_obs ~trace ~json None in
        let ctx = Lbcc.Ctx.make ~seed ?tracer ?metrics ~reliability () in
        report (Lbcc.min_cost_max_flow ~ctx net);
        emit_obs ~trace ~json tracer metrics
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Exact minimum-cost maximum flow (Theorem 1.1)")
    (with_domains
       Term.(
         const run $ seed_arg $ n_arg $ density $ max_capacity $ max_cost $ input
         $ output_dot $ max_retries_arg $ ctx_reliability_arg $ trace_arg
         $ json_arg))

let dist_cmd =
  let algo_arg =
    Arg.(
      value
      & opt (enum [ ("bfs", `Bfs); ("sssp", `Sssp); ("leader", `Leader) ]) `Bfs
      & info [ "algo" ] ~docv:"ALGO" ~doc:"Protocol: bfs, sssp or leader.")
  in
  let model_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("bc", Model.broadcast_congest);
               ("bcc", Model.broadcast_congested_clique) ])
          Model.broadcast_congest
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Broadcast model: bc (Broadcast CONGEST) or bcc (Broadcast \
             Congested Clique).")
  in
  let source_arg =
    Arg.(
      value & opt int 0
      & info [ "source" ] ~docv:"V" ~doc:"Source vertex for bfs/sssp.")
  in
  let patience_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "patience" ] ~docv:"K"
          ~doc:
            "Reliable broadcast suspects a neighbor crashed after K silent \
             supersteps.")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Run the lossy engine directly instead of wrapping the protocol \
             in the reliable-broadcast layer (same as \
             $(b,--reliability none)).")
  in
  let reliability_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("none", Model.None);
                  ("crash", Model.Crash_safe);
                  ("byzantine", Model.Byzantine_safe) ]))
          None
      & info [ "reliability" ] ~docv:"TIER"
          ~doc:
            "Delivery tier: none (raw engine), crash (ack/retransmit \
             reliable broadcast) or byzantine (echo-quorum delivery \
             tolerating f < n/3 equivocating vertices; needs \
             $(b,--model bcc)).  Default: crash when faults are injected \
             and $(b,--raw) is absent, else none.")
  in
  let run seed n family w_max algo model source patience raw reliability faults
      =
    let g = make_graph family seed n w_max in
    let nv = Graph.n g in
    let source = if source < 0 || source >= nv then 0 else source in
    (* Legacy dispatch preserved: without an explicit tier, injected
       faults select crash-safe recovery unless --raw opts out. *)
    let tier =
      match reliability with
      | Some t -> t
      | None -> if raw || faults = None then Model.None else Model.Crash_safe
    in
    if tier = Model.Byzantine_safe && model <> Model.broadcast_congested_clique
    then begin
      prerr_endline
        "lbcc dist: --reliability byzantine needs the all-to-all broadcast \
         model (--model bcc)";
      exit 2
    end;
    Printf.printf "input: n=%d m=%d  model=%s  reliability=%s\n" nv (Graph.m g)
      (Model.name model)
      (Model.reliability_name tier);
    (match faults with
    | Some f -> Printf.printf "faults: %s\n" (Format.asprintf "%a" Fault.pp f)
    | None -> Printf.printf "faults: none\n");
    let acct = Rounds.create ~bandwidth:(Model.bandwidth ~n:nv) in
    (* Lossless baseline with the same protocol seed, for the recovery check. *)
    let diag = ref Option.None in
    (match algo with
    | `Bfs ->
        let baseline = Bfs.run ~model ~graph:g ~source () in
        let r =
          match tier with
          | Model.None ->
              Bfs.run ~accountant:acct ?faults ~model ~graph:g ~source ()
          | Model.Crash_safe ->
              Bfs.run_reliable ~accountant:acct ?faults ?patience ~model
                ~graph:g ~source ()
          | Model.Byzantine_safe ->
              let r, d =
                Bfs.run_byzantine ~accountant:acct ?faults ~model ~graph:g
                  ~source ()
              in
              diag := Some d;
              r
        in
        let reached =
          Array.fold_left (fun k d -> if d < max_int then k + 1 else k) 0 r.Bfs.dist
        in
        Printf.printf
          "bfs: reached %d/%d vertices  supersteps=%d  converged=%b\n\
           matches lossless run: %b\n"
          reached nv r.Bfs.supersteps r.Bfs.converged
          (r.Bfs.dist = baseline.Bfs.dist)
    | `Sssp ->
        let baseline = Sssp.run ~model ~graph:g ~source () in
        let r =
          match tier with
          | Model.None ->
              Sssp.run ~accountant:acct ?faults ~model ~graph:g ~source ()
          | Model.Crash_safe ->
              Sssp.run_reliable ~accountant:acct ?faults ?patience ~model
                ~graph:g ~source ()
          | Model.Byzantine_safe ->
              let r, d =
                Sssp.run_byzantine ~accountant:acct ?faults ~model ~graph:g
                  ~source ()
              in
              diag := Some d;
              r
        in
        let reached =
          Array.fold_left
            (fun k d -> if Float.is_finite d then k + 1 else k)
            0 r.Sssp.dist
        in
        Printf.printf
          "sssp: reached %d/%d vertices  supersteps=%d  converged=%b\n\
           matches lossless run: %b\n"
          reached nv r.Sssp.supersteps r.Sssp.converged
          (r.Sssp.dist = baseline.Sssp.dist)
    | `Leader ->
        let baseline = Leader.run ~model ~graph:g () in
        let r =
          match tier with
          | Model.None -> Leader.run ~accountant:acct ?faults ~model ~graph:g ()
          | Model.Crash_safe ->
              Leader.run_reliable ~accountant:acct ?faults ?patience ~model
                ~graph:g ()
          | Model.Byzantine_safe ->
              let r, d =
                Leader.run_byzantine ~accountant:acct ?faults ~model ~graph:g ()
              in
              diag := Some d;
              r
        in
        Printf.printf
          "leader: elected %d  supersteps=%d  converged=%b\n\
           matches lossless run: %b\n"
          r.Leader.leader r.Leader.supersteps r.Leader.converged
          (r.Leader.leader = baseline.Leader.leader));
    Printf.printf "rounds: %d total (B = %d bits/message)\n" (Rounds.rounds acct)
      (Rounds.bandwidth acct);
    List.iter
      (fun (label, rds) -> Printf.printf "  %-28s %d\n" label rds)
      (Rounds.breakdown acct);
    match !diag with
    | Option.None -> ()
    | Some d ->
        Printf.printf "%s\n" (Format.asprintf "%a" Byzantine.Diag.pp d);
        (* A violated quorum is a failed delivery claim: the adversary beat
           the f < n/3 bound, detectably (DESIGN.md §8 exit contract). *)
        if not (Byzantine.Diag.ok d) then exit 1
  in
  Cmd.v
    (Cmd.info "dist"
       ~doc:
         "Distributed protocols (BFS / SSSP / leader election) under fault \
          injection, with reliable-broadcast recovery")
    (with_domains
       Term.(
         const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ algo_arg
         $ model_arg $ source_arg $ patience_arg $ raw_arg $ reliability_arg
         $ faults_term))

let gen_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("graph", `G); ("network", `N) ]) `G
      & info [ "kind" ] ~doc:"What to generate: graph or network.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "output" ] ~docv:"FILE" ~doc:"Output file path.")
  in
  let run seed n family w_max kind out =
    match kind with
    | `G ->
        let g = make_graph family seed n w_max in
        Lbcc_graph.Io.save_graph out g;
        Printf.printf "wrote graph n=%d m=%d to %s\n" (Graph.n g) (Graph.m g) out
    | `N ->
        let net =
          Lbcc_flow.Network.random (Prng.create seed) ~n ~density:0.3
            ~max_capacity:w_max ~max_cost:w_max
        in
        Lbcc_flow.Network_io.save out net;
        Printf.printf "wrote network n=%d m=%d to %s\n" net.Lbcc_flow.Network.n
          (Lbcc_flow.Network.m net) out
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a graph or flow network file")
    Term.(const run $ seed_arg $ n_arg $ family_arg $ w_max_arg $ kind $ out)

let report_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:"BENCH_<EXP>.json files to check.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Check each file against the lbcc-bench/1 schema (required keys, \
             field types, within_bound consistency).  This is currently the \
             only mode and may be omitted.")
  in
  let run _validate files =
    let bad = ref 0 in
    List.iter
      (fun path ->
        let contents =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Json.of_string contents with
        | exception Json.Parse_error e ->
            incr bad;
            Printf.printf "%s: invalid JSON: %s\n" path e
        | j -> (
            match Report.validate j with
            | Ok () ->
                let within =
                  match Json.member "within_bound" j with
                  | Some (Json.Bool b) -> b
                  | _ -> false
                in
                Printf.printf "%s: ok (within_bound=%b)\n" path within
            | Error e ->
                incr bad;
                Printf.printf "%s: schema error: %s\n" path e))
      files;
    if !bad > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Validate machine-readable benchmark reports (lbcc-bench/1)")
    Term.(const run $ validate $ files)

let main_cmd =
  let doc = "The Laplacian paradigm in the Broadcast Congested Clique" in
  Cmd.group
    (Cmd.info "lbcc" ~version:Lbcc.version ~doc)
    [ sparsify_cmd; solve_cmd; prepare_cmd; update_cmd; spanner_cmd;
      flow_cmd; dist_cmd; gen_cmd; report_cmd ]

(* Exit-code contract (DESIGN.md §8): 0 success; 1 a checked claim or report
   validation failed (the [exit 1] calls inside the commands); 2 usage
   error; 3 internal error.  Cmdliner reports usage problems as 123/124 —
   fold those into the contract.  Exceptions are caught here (not by
   cmdliner) so an engine timeout surfaces its coordinates — label,
   superstep, round and active phase — before the process dies with 3. *)
let () =
  match
    try Cmd.eval ~catch:false main_cmd with
    | Engine.Timeout { label; supersteps; rounds; phase } ->
        Printf.eprintf
          "lbcc: engine timeout under label %S after %d supersteps (%d \
           rounds)%s\n"
          label supersteps rounds
          (if phase = "" then "" else Printf.sprintf " in phase %S" phase);
        3
    | e ->
        Printf.eprintf "lbcc: internal error: %s\n" (Printexc.to_string e);
        3
  with
  | 0 -> exit 0
  | 123 | 124 -> exit 2
  | 125 -> exit 3
  | n -> exit n
