(* Electrical flows on a power-grid-like network.

   The first application of the Laplacian paradigm: treating a weighted
   graph as a resistor network (conductance = edge weight) and answering
   potential / effective-resistance / current queries by solving
   [L x = b].  We build a distribution-grid-shaped graph (a 2D mesh with a
   few long-distance "transmission" shortcuts), inject current at a
   generator corner and extract at a far consumer, and compare the
   distributed solver's answer with the exact factorization.

   A grid operator asks many such questions about ONE network, so this is
   the natural home for the prepared API: [Prepared.create] pays the
   Theorem 1.3 preprocessing (sparsify + factor + certify) once, and every
   potential or effective-resistance query after that costs only the
   query-phase rounds.

   Run with:  dune exec examples/electrical_grid.exe *)

module Graph = Lbcc_graph.Graph
module Vec = Lbcc_linalg.Vec
module Exact = Lbcc_laplacian.Exact
module Solver = Lbcc_laplacian.Solver
module Prepared = Lbcc_service.Prepared
open Lbcc_util

let grid_with_transmission prng ~rows ~cols ~shortcuts =
  let base = Lbcc_graph.Gen.grid prng ~rows ~cols ~w_max:4 in
  let n = rows * cols in
  let extra =
    List.init shortcuts (fun _ ->
        let u = Prng.int prng n in
        let rec pick () =
          let v = Prng.int prng n in
          if v = u then pick () else v
        in
        (* High-conductance long-range line. *)
        { Graph.u; v = pick (); w = 16.0 })
  in
  let edges = Array.to_list (Graph.edges base) @ extra in
  (* Drop accidental duplicates of existing mesh edges. *)
  let seen = Hashtbl.create 64 in
  let edges =
    List.filter
      (fun (e : Graph.edge) ->
        let key = (min e.u e.v, max e.u e.v) in
        if Hashtbl.mem seen key || e.u = e.v then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      edges
  in
  Graph.create ~n edges

let () =
  let rows = 8 and cols = 8 in
  let prng = Prng.create 99 in
  let g = grid_with_transmission prng ~rows ~cols ~shortcuts:6 in
  let n = Graph.n g in
  Printf.printf "power grid: %dx%d mesh + transmission lines, n=%d m=%d\n" rows
    cols n (Graph.m g);

  let generator = 0 and consumer = n - 1 in
  let b = Vec.zeros n in
  b.(generator) <- 1.0;
  b.(consumer) <- -1.0;

  (* Prepare the operator once (Theorem 1.3 preprocessing). *)
  let p = Prepared.create ~seed:5 ~t:8 g in
  let solver = Prepared.solver p in
  Printf.printf "sparsifier: m=%d of %d, certified kappa=%.2f\n"
    (Graph.m (Solver.sparsifier solver))
    (Graph.m g) (Solver.kappa solver);
  Printf.printf "prepare: %d rounds paid once (handle %s)\n"
    (Prepared.preprocessing_rounds p)
    (Prepared.fingerprint_hex p);

  (* First query against the handle: the generator->consumer potential. *)
  let r = Prepared.solve ~eps:1e-10 p ~b in
  Printf.printf "solve: %d iterations, %d rounds, residual %.2e\n"
    r.Prepared.iterations r.Prepared.rounds r.Prepared.residual;

  (* Compare with the exact direct solve. *)
  let x = r.Prepared.solution in
  let x_exact = Exact.solve_graph g b in
  let rel_err = Vec.dist2 x x_exact /. Vec.norm2 x_exact in
  Printf.printf "agreement with direct factorization: %.2e relative error\n" rel_err;

  let reff = x.(generator) -. x.(consumer) in
  Printf.printf "\neffective resistance generator->consumer: %.4f ohm\n" reff;

  (* Many more resistance queries on the SAME handle: no re-preprocessing,
     each costs only the query phase. *)
  let probes =
    [ (0, cols - 1); (0, (rows - 1) * cols); (cols - 1, n - 1); (n / 2, n - 1) ]
  in
  Printf.printf "\nresistance probes on the prepared handle:\n";
  List.iter
    (fun (s, t) ->
      let reff, q = Prepared.effective_resistance p ~s ~t in
      Printf.printf "  R_eff(%2d,%2d) = %.4f ohm  (%d query rounds)\n" s t reff
        q.Prepared.rounds)
    probes;
  Printf.printf
    "handle totals: %d queries, %d prepare + %d query rounds, amortized %.1f \
     rounds/query\n"
    (Prepared.queries p)
    (Prepared.preprocessing_rounds p)
    (Prepared.query_rounds p)
    (Prepared.amortized_rounds_per_query p);

  (* Current on each line: i = w * (potential difference); check that the
     generator injects exactly one unit (Kirchhoff). *)
  let injected =
    List.fold_left
      (fun acc (u, eid) ->
        let e = Graph.edge g eid in
        acc +. (e.Graph.w *. (x.(generator) -. x.(u))))
      0.0
      (Graph.neighbors g generator)
  in
  Printf.printf "net current out of the generator: %.6f (should be 1)\n" injected;

  (* The five most loaded lines. *)
  let loads =
    Array.mapi
      (fun i (e : Graph.edge) -> (Float.abs (e.w *. (x.(e.u) -. x.(e.v))), i, e))
      (Graph.edges g)
  in
  Array.sort (fun (a, _, _) (b, _, _) -> compare b a) loads;
  Printf.printf "\nmost loaded lines:\n";
  Array.iteri
    (fun rank (load, _, (e : Graph.edge)) ->
      if rank < 5 then
        Printf.printf "  %d-%d  conductance=%.0f  current=%.4f\n" e.u e.v e.w load)
    loads
