(* Minimum-cost routing on a layered transport network.

   The workload that motivates Theorem 1.1: ship as much freight as
   possible from a depot to a destination across a layered road network,
   at minimum total cost.  Solved twice: with the interior-point pipeline
   of the paper (LP + Laplacian-backed normal solves + rounding) and with
   the classical successive-shortest-path baseline; the outputs must
   agree exactly.

   Run with:  dune exec examples/transport_network.exe

   The demo prints wall-clock timings for the two solvers, hence the
   waiver below.
   lbcc-lint: allow-file det-wall-clock *)

open Lbcc_util
module Network = Lbcc_flow.Network
module Mcmf = Lbcc_flow.Mcmf
module Mcmf_lp = Lbcc_flow.Mcmf_lp

let () =
  let prng = Prng.create 314 in
  let net = Network.layered prng ~layers:3 ~width:3 ~max_capacity:5 ~max_cost:7 in
  Printf.printf "transport network: %d junctions, %d roads, depot=%d dest=%d\n"
    net.Network.n (Network.m net) net.Network.source net.Network.sink;

  let t0 = Unix.gettimeofday () in
  let baseline = Mcmf.solve net in
  let t_base = Unix.gettimeofday () -. t0 in
  Printf.printf "\nbaseline (successive shortest paths): flow=%d cost=%d (%.3fs)\n"
    baseline.Mcmf.value baseline.Mcmf.cost t_base;

  let t0 = Unix.gettimeofday () in
  let r = Mcmf_lp.solve ~prng:(Prng.create 42) net in
  let t_ipm = Unix.gettimeofday () -. t0 in
  Printf.printf "interior point (Theorem 1.1):        flow=%d cost=%d (%.3fs)\n"
    r.Mcmf_lp.value r.Mcmf_lp.cost t_ipm;
  Printf.printf "  IPM progress steps: %d   simulated BCC rounds: %d\n"
    r.Mcmf_lp.iterations r.Mcmf_lp.rounds;
  Printf.printf "  rounded flow feasible: %b   matches baseline exactly: %b\n"
    r.Mcmf_lp.feasible r.Mcmf_lp.matches_baseline;

  (* Print the loaded roads of the optimal routing. *)
  Printf.printf "\noptimal routing (loaded roads):\n";
  Array.iteri
    (fun i (a : Network.arc) ->
      if r.Mcmf_lp.flow.(i) > 0.5 then
        Printf.printf "  %2d -> %2d : %.0f/%d units at cost %d each\n" a.src a.dst
          r.Mcmf_lp.flow.(i) a.capacity a.cost)
    net.Network.arcs;

  (* Cross-check the money: recompute the bill from the flow itself. *)
  let bill = Network.flow_cost net r.Mcmf_lp.flow in
  Printf.printf "\ntotal bill recomputed from the flow: %.0f (reported %d)\n" bill
    r.Mcmf_lp.cost
