(* Quickstart: the three headline results on one small input.

   Run with:  dune exec examples/quickstart.exe *)

open Lbcc_util
module Graph = Lbcc_graph.Graph
module Vec = Lbcc_linalg.Vec
module Lbcc = Lbcc_core.Lbcc

let () =
  Printf.printf "== Laplacian paradigm in the Broadcast Congested Clique ==\n";
  Printf.printf "library version %s\n\n" Lbcc.version;

  (* A random weighted graph on 64 vertices. *)
  let prng = Prng.create 2022 in
  let g = Lbcc_graph.Gen.erdos_renyi_connected prng ~n:64 ~p:0.3 ~w_max:8 in
  Printf.printf "input graph: n=%d m=%d total weight %.0f\n" (Graph.n g)
    (Graph.m g) (Graph.total_weight g);

  (* 1. Spectral sparsification (Theorem 1.2). *)
  let s = Lbcc.sparsify ~ctx:(Lbcc.Ctx.make ~seed:1 ()) ~epsilon:0.5 ~t:8 g in
  Printf.printf "\n[Theorem 1.2] sparsifier: m=%d (%.0f%% of input)\n"
    (Graph.m s.Lbcc.sparsifier)
    (100.0 *. float_of_int (Graph.m s.Lbcc.sparsifier) /. float_of_int (Graph.m g));
  Printf.printf "  certified spectral error eps = %.3f\n" s.Lbcc.epsilon_achieved;
  Printf.printf "  max out-degree of orientation = %d\n" s.Lbcc.out_degree_max;
  Printf.printf "  Broadcast CONGEST rounds = %d (B = %d bits)\n"
    s.Lbcc.rounds.Lbcc.total s.Lbcc.rounds.Lbcc.bandwidth;

  (* 2. Laplacian solving (Theorem 1.3): an electrical-potential query. *)
  let b = Vec.zeros 64 in
  b.(0) <- 1.0;
  b.(63) <- -1.0;
  let r = Lbcc.solve_laplacian ~ctx:(Lbcc.Ctx.make ~seed:2 ()) ~eps:1e-8 g ~b in
  Printf.printf "\n[Theorem 1.3] Laplacian solve L x = e_0 - e_63:\n";
  Printf.printf "  residual ||b - Lx||/||b|| = %.2e in %d Chebyshev iterations\n"
    r.Lbcc.residual r.Lbcc.iterations;
  Printf.printf "  rounds: %d preprocessing + %d per solve\n"
    r.Lbcc.preprocessing_rounds r.Lbcc.solve_rounds;
  Printf.printf "  effective resistance R(0, 63) = %.4f\n"
    (r.Lbcc.solution.(0) -. r.Lbcc.solution.(63));

  (* 3. Min-cost max-flow (Theorem 1.1). *)
  let net =
    Lbcc_flow.Network.random (Prng.create 7) ~n:8 ~density:0.3 ~max_capacity:6
      ~max_cost:5
  in
  let f = Lbcc.min_cost_max_flow ~ctx:(Lbcc.Ctx.make ~seed:3 ()) net in
  Printf.printf "\n[Theorem 1.1] min-cost max-flow on a random 8-vertex network:\n";
  Printf.printf "  value = %d, cost = %d, exact vs combinatorial baseline: %b\n"
    f.Lbcc.value f.Lbcc.cost f.Lbcc.exact;
  Printf.printf "  interior-point iterations = %d, BCC rounds = %d\n"
    f.Lbcc.ipm_iterations f.Lbcc.rounds.Lbcc.total
