(* Maintaining a sparsifier of a growing graph by resparsification.

   The Kyng–Pachocki–Peng–Sachdeva framework behind Theorem 3.4 is a
   *resparsification* analysis: sparsifying a union of sparsifiers stays
   spectrally faithful, with errors composing multiplicatively.  This demo
   processes a graph arriving in batches of edges: instead of re-running
   the sparsifier on everything seen so far, it keeps a compressed sketch
   and re-sparsifies [sketch ∪ new batch] — the sketch stays small while
   the accumulated input keeps growing.

   After each batch the current sketch is turned into a prepared operator
   ([Prepared.create] = Theorem 1.3 preprocessing) and a small batch of
   Laplacian queries is answered through [Prepared.solve_many]:
   preprocessing is charged once per sketch generation, so the amortized
   rounds/query drop as more queries ride on the same handle.

   Run with:  dune exec examples/streaming_resparsify.exe *)

module Graph = Lbcc_graph.Graph
module Vec = Lbcc_linalg.Vec
module Sparsify = Lbcc_sparsifier.Sparsify
module Certify = Lbcc_sparsifier.Certify
module Prepared = Lbcc_service.Prepared
open Lbcc_util

let () =
  let n = 96 in
  let batches = 6 in
  let prng = Prng.create 2024 in
  (* The full stream: a dense graph revealed in random batches. *)
  let full = Lbcc_graph.Gen.complete prng ~n ~w_max:4 in
  let order = Array.init (Graph.m full) Fun.id in
  Prng.shuffle prng order;
  let per_batch = Graph.m full / batches in
  Printf.printf
    "streaming %d edges over %d vertices in %d batches of ~%d edges\n\n"
    (Graph.m full) n batches per_batch;
  Printf.printf "%6s | %9s %9s | %9s %9s | %9s\n" "batch" "seen m" "sketch m"
    "eps(seen)" "compress" "amort r/q";

  (* Each sketch generation answers this many Laplacian queries through one
     prepared handle before the next batch arrives. *)
  let queries_per_batch = 4 in
  let query_rhs =
    let qprng = Prng.create 7 in
    List.init queries_per_batch (fun _ ->
        Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian qprng)))
  in

  let sketch = ref (Graph.create ~n []) in
  let seen = ref (Graph.create ~n []) in
  for b = 0 to batches - 1 do
    let from = b * per_batch in
    let upto = if b = batches - 1 then Graph.m full - 1 else from + per_batch - 1 in
    let batch_ids = Array.to_list (Array.sub order from (upto - from + 1)) in
    let batch = Graph.sub_edges full batch_ids in
    seen := Graph.coalesce (Graph.union !seen batch);
    (* Resparsify sketch ∪ batch, never the full accumulated graph. *)
    let r =
      Sparsify.resparsify
        ~prng:(Prng.create (100 + b))
        ~graphs:[ !sketch; batch ] ~epsilon:0.5 ~t:4 ~k:5 ()
    in
    sketch := r.Sparsify.sparsifier;
    let eps =
      if Graph.is_connected !seen then
        (Certify.exact !seen !sketch).Certify.epsilon_achieved
      else nan
    in
    (* Prepare the new sketch once and batch this generation's queries
       through the handle: amortized rounds/query = (prepare + q * query) / q. *)
    let amortized =
      if Graph.is_connected !sketch then begin
        let p = Prepared.create ~seed:(200 + b) !sketch in
        ignore (Prepared.solve_many p query_rhs : Prepared.query_result list);
        Prepared.amortized_rounds_per_query p
      end
      else nan
    in
    Printf.printf "%6d | %9d %9d | %9.3f %8.1f%% | %9.1f\n" (b + 1)
      (Graph.m !seen) (Graph.m !sketch) eps
      (100.0 *. float_of_int (Graph.m !sketch) /. float_of_int (Graph.m !seen))
      amortized
  done;
  Printf.printf
    "\nthe sketch answers Laplacian queries for the whole stream: the\n\
     final certified eps bounds x^T L_seen x vs x^T L_sketch x for all x.\n\
     (with the paper's bundle size t = Theta(log^2 n / eps^2) the certified\n\
     eps would stay fixed across batches — Theorem 3.4; the calibrated t\n\
     trades accumulated error for the compression visible above.)\n"
