(* Maintaining a sparsifier — and a prepared solver — of a mutating graph.

   Earlier revisions of this demo re-sparsified [sketch ∪ new batch] by
   hand, following the Kyng–Pachocki–Peng–Sachdeva resparsification recipe
   behind Theorem 3.4 (sparsifying a union of sparsifiers stays spectrally
   faithful, errors composing multiplicatively).  The first-class mutation
   API packages that recipe end to end:

   - a [Graph.Delta] names each batch of inserts/deletes/reweights;
   - the incremental [Sparsify.update] re-samples only the delta's vertex
     neighborhoods, passing untouched sketch edges through verbatim;
   - [Prepared.update_cached] patches a hot prepared handle in place —
     fingerprint patched in O(|delta|), sketch updated incrementally,
     preconditioner refactored — and re-keys the handle cache, so the next
     prepare of the mutated graph is a hit instead of a cold rebuild.

   After each delta the patched handle answers a small batch of Laplacian
   queries; the certificate column verifies the sketch against the whole
   accumulated graph, exactly as the static pipeline would.

   Run with:  dune exec examples/streaming_resparsify.exe *)

module Graph = Lbcc_graph.Graph
module Gen = Lbcc_graph.Gen
module Vec = Lbcc_linalg.Vec
module Sparsify = Lbcc_sparsifier.Sparsify
module Certify = Lbcc_sparsifier.Certify
module Cache = Lbcc_service.Cache
module Prepared = Lbcc_service.Prepared
open Lbcc_util

let () =
  let n = 96 in
  let batches = 6 in
  let seed = 5 in
  let g0 = Gen.random_geometric (Prng.create 11) ~n ~radius:0.25 ~w_max:4 in
  Printf.printf
    "mutating a %d-vertex geometric graph (m=%d) through %d Graph.Delta \
     batches\n\n"
    n (Graph.m g0) batches;

  (* Each generation answers this many Laplacian queries through the (same,
     patched) prepared handle. *)
  let queries_per_batch = 4 in
  let query_rhs =
    let qprng = Prng.create 7 in
    List.init queries_per_batch (fun _ ->
        Vec.mean_center (Vec.init n (fun _ -> Prng.gaussian qprng)))
  in

  let cache = Cache.create ~capacity:4 () in
  let h = ref (fst (Prepared.create_cached ~cache ~seed g0)) in
  let create_rounds = Prepared.preprocessing_rounds !h in
  Printf.printf "prepare: %d rounds (paid once; updates below patch this \
                 handle)\n\n" create_rounds;
  Printf.printf "%5s | %5s %7s %8s | %9s %9s | %9s %9s\n" "gen" "|d|" "m"
    "sketch m" "upd rnds" "vs create" "eps(acc)" "residual";

  let dprng = Prng.create 2024 in
  for _b = 1 to batches do
    (* A connectivity-preserving random delta against the accumulated
       graph: mostly inserts, a few deletes and reweights. *)
    let d =
      Gen.delta ~w_max:4 ~connected:true dprng ~graph:(Prepared.graph !h)
        ~inserts:12 ~deletes:2 ~reweights:2 ()
    in
    (* Patch the handle in place: O(|delta|) fingerprint patch, incremental
       sketch update, refactor — and the cache is re-keyed under the new
       fingerprint. *)
    h := Prepared.update_cached ~cache !h d;
    let sk = Prepared.sketch !h in
    let eps =
      (Certify.exact sk.Sparsify.base sk.Sparsify.sparsifier)
        .Certify.epsilon_achieved
    in
    let qs = Prepared.solve_many !h query_rhs in
    let worst =
      List.fold_left
        (fun a (q : Prepared.query_result) -> Float.max a q.Prepared.residual)
        0.0 qs
    in
    Printf.printf "%5d | %5d %7d %8d | %9d %8.2fx | %9.3f %9.2e\n"
      (Prepared.generation !h) (Graph.Delta.size d)
      (Graph.m (Prepared.graph !h))
      (Graph.m sk.Sparsify.sparsifier)
      (Prepared.preprocessing_rounds !h)
      (float_of_int (Prepared.preprocessing_rounds !h)
      /. float_of_int (Stdlib.max 1 create_rounds))
      eps worst
  done;

  (* The patched handle sits exactly where a fresh prepare of the mutated
     graph looks: this lookup is a cache hit, not a cold rebuild. *)
  let _, hit = Prepared.create_cached ~cache ~seed (Prepared.graph !h) in
  Printf.printf
    "\nre-preparing the accumulated graph: cache %s (the patched handle \
     was\nre-keyed under the new fingerprint)\n"
    (if hit then "hit" else "miss");
  Printf.printf
    "the eps column certifies each generation's sketch against the whole\n\
     accumulated graph (KPPS: pass-through errors compose multiplicatively\n\
     across generations; a full rebuild would cost ~%d rounds every batch).\n"
    create_rounds
